#ifndef PRESERIAL_STORAGE_WAL_H_
#define PRESERIAL_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "storage/constraint.h"
#include "storage/row.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace preserial::storage {

// Record kinds in the write-ahead log. DDL is logged too, so recovery can
// rebuild the database from an empty state.
enum class WalRecordType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kInsert = 4,
  kUpdate = 5,   // Full after-image of the row, keyed by (old) primary key.
  kDelete = 6,
  kCreateTable = 7,
  kAddConstraint = 8,
  kCheckpoint = 9,  // Marks the start of a snapshot rewrite.
  kDropTable = 10,
  kCreateIndex = 11,
  kDropIndex = 12,
  // Cluster-coordinator records (2PC over shards). `txn_id` is the global
  // transaction id; they carry no table data — a recovering coordinator
  // replays them to re-drive in-doubt shards (presumed abort: a prepare
  // without a decision aborts).
  kClusterPrepare = 13,  // Branch list voted yes; decision pending.
  kClusterCommit = 14,   // Durable commit decision.
  kClusterAbort = 15,    // Durable abort decision.
  kClusterEnd = 16,      // All branches drove to the decision; forget txn.
};

const char* WalRecordTypeName(WalRecordType t);

// Decoded WAL record. Fields beyond `type` and `txn_id` are populated
// depending on the type.
struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  TxnId txn_id = kInvalidTxnId;
  std::string table;        // All data and DDL records.
  Value key;                // kUpdate/kDelete
  Row row;                  // kInsert/kUpdate (after-image)
  Schema schema;            // kCreateTable
  CheckConstraint constraint;  // kAddConstraint
  std::string index_name;   // kCreateIndex/kDropIndex
  uint64_t index_column = 0;  // kCreateIndex
  // kClusterPrepare: participating (shard id, branch txn id) pairs.
  std::vector<std::pair<uint64_t, uint64_t>> branches;

  // Wire format: payload bytes (no framing).
  void EncodeTo(std::string* out) const;
  static Result<WalRecord> DecodeFrom(std::string_view payload);
};

// Byte sink/source for the log. Two implementations: a real file and an
// in-memory buffer (tests, simulation runs that don't need durability).
class WalStorage {
 public:
  virtual ~WalStorage() = default;
  virtual Status Append(std::string_view bytes) = 0;
  virtual Status Sync() = 0;
  virtual Result<std::string> ReadAll() const = 0;
  // Atomically replaces the whole log (checkpointing).
  virtual Status Reset(std::string_view bytes) = 0;
};

class MemoryWalStorage : public WalStorage {
 public:
  Status Append(std::string_view bytes) override;
  Status Sync() override { return Status::Ok(); }
  Result<std::string> ReadAll() const override { return buffer_; }
  Status Reset(std::string_view bytes) override;

  // Test hook: simulate a torn tail write of `n` bytes lost.
  void CorruptTail(size_t n);

 private:
  std::string buffer_;
};

class FileWalStorage : public WalStorage {
 public:
  explicit FileWalStorage(std::string path) : path_(std::move(path)) {}

  Status Append(std::string_view bytes) override;
  Status Sync() override;
  Result<std::string> ReadAll() const override;
  Status Reset(std::string_view bytes) override;

 private:
  std::string path_;
};

// Appends framed records: [u32 payload_len][u32 crc32(payload)][payload].
class WalWriter {
 public:
  explicit WalWriter(WalStorage* storage) : storage_(storage) {}

  Status Append(const WalRecord& record);
  Status Sync() { return storage_->Sync(); }

  // Convenience constructors for the common record shapes.
  Status LogBegin(TxnId txn);
  Status LogCommit(TxnId txn);
  Status LogAbort(TxnId txn);
  Status LogInsert(TxnId txn, std::string table, Row row);
  Status LogUpdate(TxnId txn, std::string table, Value key, Row after);
  Status LogDelete(TxnId txn, std::string table, Value key);
  Status LogCreateTable(TxnId txn, std::string table, const Schema& schema);
  Status LogAddConstraint(TxnId txn, std::string table,
                          const CheckConstraint& constraint);
  Status LogDropTable(TxnId txn, std::string table);
  Status LogCreateIndex(TxnId txn, std::string table, std::string index,
                        uint64_t column);
  Status LogDropIndex(TxnId txn, std::string table, std::string index);
  Status LogCheckpoint();

  // Cluster-coordinator records. Prepare and the decisions sync: they are
  // the durability points 2PC leans on.
  Status LogClusterPrepare(
      TxnId global, std::vector<std::pair<uint64_t, uint64_t>> branches);
  Status LogClusterCommit(TxnId global);
  Status LogClusterAbort(TxnId global);
  Status LogClusterEnd(TxnId global);

 private:
  WalStorage* storage_;
};

// Decodes a full log image into records. A torn or corrupt tail ends the
// scan cleanly (records before the damage are returned); corruption in the
// middle is reported as kCorruption.
struct WalScanResult {
  std::vector<WalRecord> records;
  // Ok when the whole log parsed, or when only a torn tail was dropped.
  Status status;
  size_t bytes_consumed = 0;
};

WalScanResult ScanWal(std::string_view log);

// Frame a single record (exposed for tests).
void FrameRecord(const WalRecord& record, std::string* out);

// The framing layer on its own: [u32 payload_len][u32 crc32(payload)][payload]
// around an opaque payload. The replica op log reuses this format for its own
// record type; FrameRecord/ScanWal are implemented on top of these.
void FramePayload(std::string_view payload, std::string* out);

struct FrameScanResult {
  std::vector<std::string> payloads;
  // Ok when the whole log parsed, or when only a torn tail was dropped.
  Status status;
  size_t bytes_consumed = 0;
};

// Same tail semantics as ScanWal: a torn final frame (short header or short
// payload) ends the scan cleanly; a CRC mismatch before the tail is
// kCorruption.
FrameScanResult ScanFrames(std::string_view log);

}  // namespace preserial::storage

#endif  // PRESERIAL_STORAGE_WAL_H_
