#ifndef PRESERIAL_STORAGE_DATABASE_H_
#define PRESERIAL_STORAGE_DATABASE_H_

#include <memory>
#include <string>

#include "common/ids.h"
#include "common/status.h"
#include "storage/catalog.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace preserial::storage {

// The LDBS facade: catalog + write-ahead log + recovery. This is the
// "Local DataBase System" of the paper's data layer — a conventional
// store that the GTM's Secure System Transactions ultimately write to.
//
// Externally synchronized: one logical caller at a time (the 2PL engine or
// the GTM serializes access above this layer).
class Database {
 public:
  // Uses an in-memory log (no durability across process restarts).
  Database();
  // Uses the given log storage; call Open() to recover existing state.
  explicit Database(std::unique_ptr<WalStorage> wal_storage);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Replays the log into the catalog. Call once, before any other use.
  // Returns recovery statistics; a corrupt log (other than a torn tail)
  // fails with kCorruption.
  Result<RecoveryStats> Open();

  // --- DDL (auto-committed, logged under the system txn) -------------------
  Result<Table*> CreateTable(const std::string& name, Schema schema);
  Status AddConstraint(const std::string& table, CheckConstraint constraint);
  Status DropTable(const std::string& name);
  Status CreateIndex(const std::string& table, const std::string& index,
                     size_t column);
  Status DropIndex(const std::string& table, const std::string& index);

  // --- auto-committed single-row DML (logs BEGIN/op/COMMIT) ---------------
  Status InsertRow(const std::string& table, Row row);
  Status UpdateRow(const std::string& table, const Value& key, Row after);
  Status DeleteRow(const std::string& table, const Value& key);

  // --- access for the transaction engines ----------------------------------
  Catalog* catalog() { return &catalog_; }
  const Catalog& catalog() const { return catalog_; }
  WalWriter* wal() { return &wal_writer_; }
  Result<Table*> GetTable(const std::string& name) {
    return catalog_.GetTable(name);
  }

  // Monotonic transaction-id source shared by all engines on this database.
  TxnId NextTxnId() { return next_txn_id_++; }

  // Rewrites the log as a snapshot of current state (DDL + inserts under the
  // system txn). Must not run while any transaction is in flight.
  Status Checkpoint();

 private:
  std::unique_ptr<WalStorage> wal_storage_;
  WalWriter wal_writer_;
  Catalog catalog_;
  TxnId next_txn_id_ = 1;
  bool opened_ = false;
};

}  // namespace preserial::storage

#endif  // PRESERIAL_STORAGE_DATABASE_H_
