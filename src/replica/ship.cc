#include "replica/ship.h"

#include <algorithm>

#include "common/strings.h"

namespace preserial::replica {

const char* ShipModeName(ShipMode mode) {
  switch (mode) {
    case ShipMode::kSync:
      return "sync";
    case ShipMode::kAsync:
      return "async";
  }
  return "?";
}

void LogShipper::AddBackup(ReplicaNode* node) {
  BackupSlot slot;
  slot.node = node;
  slot.acked = node->last_applied();
  slot.max_shipped = slot.acked;
  backups_.push_back(slot);
}

void LogShipper::Resync(BackupSlot* slot) {
  slot->acked = slot->node->last_applied();
}

LogShipper::ShipOutcome LogShipper::ShipOne(BackupSlot* slot,
                                            const ReplicaRecord& rec) {
  ++counters_.records_shipped;
  if (rec.lsn <= slot->max_shipped) ++counters_.resends;
  slot->max_shipped = std::max(slot->max_shipped, rec.lsn);
  if (Chance(options_.loss)) {
    ++counters_.record_losses;
    return ShipOutcome::kLost;
  }
  Status applied = slot->node->Apply(rec);
  if (!applied.ok()) {
    return applied.code() == StatusCode::kUnavailable ? ShipOutcome::kDown
                                                      : ShipOutcome::kRejected;
  }
  if (Chance(options_.duplicate)) {
    ++counters_.duplicates_delivered;
    (void)slot->node->Apply(rec);
  }
  if (Chance(options_.loss)) {
    // The record landed but its ack didn't: our view stays stale, the next
    // round resends, and the backup absorbs the duplicate.
    ++counters_.ack_losses;
    return ShipOutcome::kLost;
  }
  slot->acked = std::max(slot->acked, slot->node->last_applied());
  ++counters_.records_acked;
  return ShipOutcome::kAcked;
}

Status LogShipper::ShipAll() {
  for (BackupSlot& slot : backups_) {
    if (!slot.node->alive()) continue;
    Resync(&slot);
    int attempts = 0;
    while (slot.acked < log_->last_lsn()) {
      const ReplicaRecord& rec = log_->At(slot.acked + 1);
      switch (ShipOne(&slot, rec)) {
        case ShipOutcome::kAcked:
          attempts = 0;
          break;
        case ShipOutcome::kLost:
          if (++attempts > options_.max_sync_attempts) {
            return Status::Internal(
                StrFormat("ship: %d consecutive losses to %s",
                          options_.max_sync_attempts, slot.node->name().c_str()));
          }
          break;
        case ShipOutcome::kDown:
          // Died mid-round; the failover controller deals with it.
          goto next_backup;
        case ShipOutcome::kRejected:
          return Status::Internal("ship: " + slot.node->name() +
                                  " rejected record " +
                                  std::to_string(slot.acked + 1));
      }
    }
  next_backup:;
  }
  return Status::Ok();
}

Status LogShipper::Pump() {
  for (BackupSlot& slot : backups_) {
    if (!slot.node->alive()) continue;
    Resync(&slot);
    uint64_t budget = options_.window;
    bool stalled = false;
    while (budget-- > 0 && !stalled && slot.acked < log_->last_lsn()) {
      const ReplicaRecord& rec = log_->At(slot.acked + 1);
      switch (ShipOne(&slot, rec)) {
        case ShipOutcome::kAcked:
          break;
        case ShipOutcome::kLost:
          // Go-back-N: anything later this round would only be a gap.
          stalled = true;
          break;
        case ShipOutcome::kDown:
          stalled = true;
          break;
        case ShipOutcome::kRejected:
          return Status::Internal("ship: " + slot.node->name() +
                                  " rejected record " +
                                  std::to_string(slot.acked + 1));
      }
    }
  }
  return Status::Ok();
}

uint64_t LogShipper::MinAckedLsn() const {
  uint64_t min_acked = log_->last_lsn();
  for (const BackupSlot& slot : backups_) {
    if (!slot.node->alive()) continue;
    min_acked = std::min(min_acked, slot.acked);
  }
  return min_acked;
}

uint64_t LogShipper::Lag() const { return log_->last_lsn() - MinAckedLsn(); }

}  // namespace preserial::replica
