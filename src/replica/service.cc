#include "replica/service.h"

#include <utility>

namespace preserial::replica {

ReplicaService::ReplicaService(gtm::GtmOptions gtm_options,
                               ReplicaOptions options, uint64_t ship_seed)
    : ship_rng_(ship_seed),
      group_(&clock_, gtm_options, options, &ship_rng_) {}

Status ReplicaService::CreateTable(const std::string& table,
                                   storage::Schema schema) {
  std::lock_guard<std::mutex> lk(mu_);
  return group_.CreateTable(table, std::move(schema));
}

Status ReplicaService::InsertRow(const std::string& table, storage::Row row) {
  std::lock_guard<std::mutex> lk(mu_);
  return group_.InsertRow(table, std::move(row));
}

Status ReplicaService::RegisterObject(const gtm::ObjectId& id,
                                      const std::string& table,
                                      const storage::Value& key,
                                      std::vector<size_t> member_columns,
                                      semantics::LogicalDependencies deps) {
  std::lock_guard<std::mutex> lk(mu_);
  return group_.RegisterObject(id, table, key, std::move(member_columns),
                               std::move(deps));
}

TxnId ReplicaService::Begin(int priority) {
  std::lock_guard<std::mutex> lk(mu_);
  return group_.Begin(priority);
}

Status ReplicaService::InvokeOnce(TxnId txn, uint64_t seq,
                                  const gtm::ObjectId& object,
                                  semantics::MemberId member,
                                  const semantics::Operation& op) {
  std::lock_guard<std::mutex> lk(mu_);
  return group_.InvokeOnce(txn, seq, object, member, op);
}

Status ReplicaService::CommitOnce(TxnId txn, uint64_t seq) {
  std::lock_guard<std::mutex> lk(mu_);
  return group_.CommitOnce(txn, seq);
}

Status ReplicaService::AbortOnce(TxnId txn, uint64_t seq) {
  std::lock_guard<std::mutex> lk(mu_);
  return group_.AbortOnce(txn, seq);
}

Status ReplicaService::SleepOnce(TxnId txn, uint64_t seq) {
  std::lock_guard<std::mutex> lk(mu_);
  return group_.SleepOnce(txn, seq);
}

Status ReplicaService::AwakeOnce(TxnId txn, uint64_t seq) {
  std::lock_guard<std::mutex> lk(mu_);
  return group_.AwakeOnce(txn, seq);
}

Result<gtm::TxnState> ReplicaService::StateOf(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  return group_.StateOf(txn);
}

std::vector<gtm::GtmEvent> ReplicaService::TakeEvents() {
  std::lock_guard<std::mutex> lk(mu_);
  return group_.TakeEvents();
}

Status ReplicaService::Pump() {
  std::lock_guard<std::mutex> lk(mu_);
  return group_.Pump();
}

void ReplicaService::KillPrimary() {
  std::lock_guard<std::mutex> lk(mu_);
  group_.KillPrimary();
}

bool ReplicaService::primary_alive() {
  std::lock_guard<std::mutex> lk(mu_);
  return group_.primary_alive();
}

Result<PromotionReport> ReplicaService::Promote() {
  std::lock_guard<std::mutex> lk(mu_);
  return group_.Promote();
}

uint64_t ReplicaService::ReplicationLag() {
  std::lock_guard<std::mutex> lk(mu_);
  return group_.shipper()->Lag();
}

uint64_t ReplicaService::Epoch() {
  std::lock_guard<std::mutex> lk(mu_);
  return group_.epoch();
}

}  // namespace preserial::replica
