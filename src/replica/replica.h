#ifndef PRESERIAL_REPLICA_REPLICA_H_
#define PRESERIAL_REPLICA_REPLICA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"
#include "gtm/endpoint.h"
#include "gtm/gtm.h"
#include "gtm/policies.h"
#include "replica/log.h"
#include "replica/node.h"
#include "replica/ship.h"
#include "storage/constraint.h"
#include "storage/row.h"
#include "storage/schema.h"

namespace preserial::replica {

struct ReplicaOptions {
  size_t num_backups = 1;
  ShipOptions ship;
  // Every node keeps a durable (in-memory) framed record log so it can
  // Restart() after a crash; disable to save the copies in big sweeps.
  bool durable_node_logs = true;
};

// What a promotion did. `sleeping_lost` counts Sleeping transactions the
// dead primary knew and the winner does not — always 0 under sync
// shipping, the bench's headline number under async.
struct PromotionReport {
  size_t new_primary = 0;
  uint64_t new_epoch = 0;
  uint64_t promoted_lsn = 0;       // Winner's applied LSN at promotion.
  uint64_t truncated_records = 0;  // Group-log suffix discarded by fencing.
  int64_t sleeping_at_failure = 0;
  int64_t sleeping_preserved = 0;
  int64_t sleeping_lost = 0;
  int64_t grant_events_synthesized = 0;
};

// A replica group behind the plain GtmEndpoint interface: one primary plus
// N backups, all replaying the same op log (src/replica/log.h). Sessions,
// runners and the cluster router cannot tell it from a single Gtm — until
// the primary dies, at which point every call returns kUnavailable
// (Begin: kInvalidTxnId) and the PR-1 retry/backoff machinery rides out
// the outage while a FailoverController promotes a backup.
//
// Externally synchronized; ReplicaService wraps it for real threads.
class ReplicatedGtm : public gtm::GtmEndpoint {
 public:
  ReplicatedGtm(const Clock* clock, gtm::GtmOptions gtm_options,
                ReplicaOptions options, Rng* ship_rng);

  // --- replicated bootstrap (DDL / bulk load / object registration) -------
  Status CreateTable(const std::string& table, storage::Schema schema);
  Status AddConstraint(const std::string& table,
                       storage::CheckConstraint constraint);
  Status InsertRow(const std::string& table, storage::Row row);
  Status RegisterObject(const gtm::ObjectId& id, const std::string& table,
                        const storage::Value& key,
                        std::vector<size_t> member_columns,
                        semantics::LogicalDependencies deps = {});

  // --- GtmEndpoint ---------------------------------------------------------
  TxnId Begin(int priority = 0) override;
  Status Invoke(TxnId txn, const gtm::ObjectId& object,
                semantics::MemberId member,
                const semantics::Operation& op) override;
  Result<storage::Value> ReadLocal(TxnId txn, const gtm::ObjectId& object,
                                   semantics::MemberId member) override;
  Status RequestCommit(TxnId txn) override;
  Status RequestAbort(TxnId txn) override;
  Status Sleep(TxnId txn) override;
  Status Awake(TxnId txn) override;
  Status InvokeOnce(TxnId txn, uint64_t seq, const gtm::ObjectId& object,
                    semantics::MemberId member,
                    const semantics::Operation& op) override;
  Status CommitOnce(TxnId txn, uint64_t seq) override;
  Status AbortOnce(TxnId txn, uint64_t seq) override;
  Status SleepOnce(TxnId txn, uint64_t seq) override;
  Status AwakeOnce(TxnId txn, uint64_t seq) override;
  Result<gtm::TxnState> StateOf(TxnId txn) const override;
  std::vector<gtm::GtmEvent> TakeEvents() override;
  std::vector<TxnId> AbortExpiredWaits(Duration max_wait) override;

  // --- 2PC branch surface (cluster::ShardBackend routes through these) ----
  Status Prepare(TxnId txn);
  Status CommitPrepared(TxnId txn);
  Status AbortPrepared(TxnId txn);

  // Replicated maintenance sweep (paper: disconnect detection).
  std::vector<TxnId> SleepIdleTransactions(Duration idle_timeout);

  // --- failure injection + failover ---------------------------------------
  void KillPrimary() { nodes_[primary_]->Kill(); }
  bool primary_alive() const { return nodes_[primary_]->alive(); }
  // Promotes the live backup with the highest applied LSN (see
  // FailoverController in failover.h). Fails while the primary is alive.
  Result<PromotionReport> Promote();

  // Async shipping round; refreshes the lag gauge. No-op in sync mode
  // (everything already shipped inline).
  Status Pump();

  // --- introspection -------------------------------------------------------
  size_t num_nodes() const { return nodes_.size(); }
  size_t primary_index() const { return primary_; }
  ReplicaNode* node(size_t i) { return nodes_[i].get(); }
  const ReplicaNode* node(size_t i) const { return nodes_[i].get(); }
  gtm::Gtm* primary_gtm() { return nodes_[primary_]->gtm(); }
  const gtm::Gtm* primary_gtm() const { return nodes_[primary_]->gtm(); }
  storage::Database* primary_db() { return nodes_[primary_]->db(); }
  uint64_t epoch() const { return epoch_; }
  const ReplicaLog& log() const { return log_; }
  ReplicaLog* mutable_log() { return &log_; }
  LogShipper* shipper() { return &shipper_; }
  const LogShipper& shipper() const { return shipper_; }
  const ReplicaOptions& options() const { return options_; }

 private:
  friend class FailoverController;

  // Stamp, apply to the primary, append to the group log, ship (sync).
  // Returns the transport status; the command's own reply lands in *reply.
  Status Run(ReplicaRecord* rec, Status* reply);
  Status RunReply(ReplicaRecord rec);
  Status Bootstrap(const storage::WalRecord& wr);
  void RebuildShipper();
  void UpdateLagGauge();

  const Clock* clock_;
  ReplicaOptions options_;
  ReplicaLog log_;
  LogShipper shipper_;
  std::vector<std::unique_ptr<ReplicaNode>> nodes_;
  size_t primary_ = 0;
  uint64_t epoch_ = 1;
  // Grant events synthesized at promotion, drained by the next TakeEvents.
  std::vector<gtm::GtmEvent> pending_events_;
};

}  // namespace preserial::replica

#endif  // PRESERIAL_REPLICA_REPLICA_H_
