#ifndef PRESERIAL_REPLICA_LOG_H_
#define PRESERIAL_REPLICA_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/status.h"
#include "gtm/endpoint.h"
#include "semantics/operation.h"
#include "storage/value.h"

namespace preserial::replica {

// Command kinds in the replicated op log. One entry per externally issued,
// state-changing GTM decision; internal transitions (queue grants from
// PumpWaiters, reconciliation results) are derived deterministically by
// replaying these, so they are never logged.
enum class ReplicaOpKind : uint8_t {
  kBegin = 1,
  kInvoke = 2,
  kReadLocal = 3,  // Logged: a read grants a lock and materializes A_temp.
  kCommit = 4,     // RequestCommit (single-shard reconcile + commit).
  kAbort = 5,
  kSleep = 6,
  kAwake = 7,
  kPrepare = 8,  // 2PC phase 1: vote + park in Committing.
  kCommitPrepared = 9,
  kAbortPrepared = 10,
  kAbortExpiredWaits = 11,  // Maintenance sweeps are decisions too: their
  kSleepIdle = 12,          // victims must match on every replica.
  kRegisterObject = 13,
  // DDL / bulk load shipped as an embedded storage::WalRecord payload
  // (kCreateTable, kAddConstraint or kInsert), so the backup databases are
  // built through the same log that replays transactions against them.
  kBootstrap = 14,
};

const char* ReplicaOpKindName(ReplicaOpKind kind);

// One replicated command. `lsn` is 1-based and dense; `epoch` fences stale
// primaries; `time` is the primary's clock at decision time — replicas pin
// their replay clock to it before dispatching, so time-derived state
// (A_t_sleep, X_tc, last_activity) is bit-identical on every node and the
// paper's Algorithm 9 awake-check gives the same answer after a failover.
struct ReplicaRecord {
  uint64_t lsn = 0;
  uint64_t epoch = 0;
  TimePoint time = 0;
  ReplicaOpKind kind = ReplicaOpKind::kBegin;

  // kTrue for the idempotent *Once variants; `seq` is the client's
  // per-transaction request number. Replaying the command replays the
  // reply-cache update too, so dedup state survives failover.
  bool once = false;
  uint64_t seq = 0;

  // kBegin logs the id the primary allotted; replicas assert they derive
  // the same one (cheap divergence tripwire).
  TxnId txn = kInvalidTxnId;
  int priority = 0;

  gtm::ObjectId object;             // kInvoke / kReadLocal / kRegisterObject
  semantics::MemberId member = 0;   // kInvoke / kReadLocal
  semantics::Operation op;          // kInvoke
  Duration duration = 0;            // kAbortExpiredWaits / kSleepIdle

  // kRegisterObject.
  std::string table;
  storage::Value key;
  std::vector<uint64_t> member_columns;
  // LogicalDependencies::CanonicalPairs() wire form.
  std::vector<std::pair<uint64_t, uint64_t>> dep_pairs;

  // kBootstrap: an encoded storage::WalRecord.
  std::string bootstrap;

  // Payload bytes (no framing; storage::FramePayload adds the CRC frame).
  void EncodeTo(std::string* out) const;
  static Result<ReplicaRecord> DecodeFrom(std::string_view payload);
};

// The primary's in-memory op log: the replication source of truth. LSNs
// are 1-based (lsn == index + 1). Failover truncates the suffix the
// promoted backup never applied — those commands were acknowledged by a
// primary that is now fenced, and sync shipping guarantees the suffix is
// empty.
class ReplicaLog {
 public:
  uint64_t next_lsn() const { return records_.size() + 1; }
  uint64_t last_lsn() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  // `rec.lsn` must equal next_lsn().
  Status Append(ReplicaRecord rec);

  // 1-based access; lsn must be in [1, last_lsn()].
  const ReplicaRecord& At(uint64_t lsn) const { return records_[lsn - 1]; }

  // Drops every record after `new_last`; returns how many were dropped.
  uint64_t TruncateTo(uint64_t new_last);

  const std::vector<ReplicaRecord>& records() const { return records_; }

 private:
  std::vector<ReplicaRecord> records_;
};

}  // namespace preserial::replica

#endif  // PRESERIAL_REPLICA_LOG_H_
