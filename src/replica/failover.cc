#include "replica/failover.h"

#include <set>
#include <utility>

#include "common/strings.h"
#include "gtm/managed_txn.h"
#include "gtm/metrics.h"
#include "gtm/trace.h"
#include "gtm/txn_state.h"

namespace preserial::replica {

Result<PromotionReport> FailoverController::Promote() {
  ReplicatedGtm* g = group_;
  ReplicaNode* old_primary = g->nodes_[g->primary_].get();
  if (old_primary->alive()) {
    return Status::FailedPrecondition("failover: primary is still alive");
  }

  // Elect the live backup with the most of the log applied.
  size_t winner = g->nodes_.size();
  uint64_t winner_lsn = 0;
  for (size_t i = 0; i < g->nodes_.size(); ++i) {
    if (i == g->primary_ || !g->nodes_[i]->alive()) continue;
    if (winner == g->nodes_.size() ||
        g->nodes_[i]->last_applied() > winner_lsn) {
      winner = i;
      winner_lsn = g->nodes_[i]->last_applied();
    }
  }
  if (winner == g->nodes_.size()) {
    return Status::Unavailable("failover: no live backup to promote");
  }
  ReplicaNode* node = g->nodes_[winner].get();

  PromotionReport report;
  report.new_primary = winner;
  report.promoted_lsn = winner_lsn;

  // What the dead primary knew vs. what the winner replayed. In-process we
  // can inspect the corpse for exact accounting; a real deployment only
  // ever learns `sleeping_preserved`.
  const std::vector<TxnId> dead_sleeping =
      old_primary->gtm()->TransactionsInState(gtm::TxnState::kSleeping);
  std::set<TxnId> winner_sleeping;
  for (TxnId t :
       node->gtm()->TransactionsInState(gtm::TxnState::kSleeping)) {
    winner_sleeping.insert(t);
  }
  report.sleeping_at_failure = static_cast<int64_t>(dead_sleeping.size());
  for (TxnId t : dead_sleeping) {
    if (winner_sleeping.count(t) > 0) {
      ++report.sleeping_preserved;
    } else {
      ++report.sleeping_lost;
    }
  }

  // Fence: the suffix only the dead primary applied is gone — clients that
  // never got those replies will retry against the new epoch; clients that
  // did are the async-mode durability gap the bench measures.
  report.truncated_records = g->log_.TruncateTo(winner_lsn);
  report.new_epoch = ++g->epoch_;
  node->set_epoch(g->epoch_);
  node->set_role(ReplicaRole::kPrimary);
  g->primary_ = winner;

  // Backups drained notifications while replaying; re-announce every grant
  // a live Active transaction holds so parked sessions wake up after they
  // re-bind. OnGranted is idempotent on the session side, so transactions
  // that already consumed their grant shrug the repeat off.
  for (TxnId t :
       node->gtm()->TransactionsInState(gtm::TxnState::kActive)) {
    const gtm::ManagedTxn* txn = node->gtm()->GetTxn(t);
    if (txn == nullptr) continue;
    std::set<gtm::ObjectId> objects;
    for (const auto& [cell, cls] : txn->grants()) {
      (void)cls;
      objects.insert(cell.object);
    }
    for (const gtm::ObjectId& object : objects) {
      g->pending_events_.push_back(gtm::GtmEvent{t, object});
      ++report.grant_events_synthesized;
    }
  }

  g->RebuildShipper();
  g->UpdateLagGauge();

  gtm::GtmCounters& counters = node->gtm()->metrics().counters();
  ++counters.failovers_total;
  gtm::TraceLog* trace = node->gtm()->trace();
  if (trace->enabled()) {
    trace->Record(
        node->replay_clock()->Now(), gtm::TraceEventKind::kPromote,
        kInvalidTxnId, "",
        StrFormat("epoch=%llu lsn=%llu sleeping_preserved=%lld/%lld",
                  static_cast<unsigned long long>(report.new_epoch),
                  static_cast<unsigned long long>(report.promoted_lsn),
                  static_cast<long long>(report.sleeping_preserved),
                  static_cast<long long>(report.sleeping_at_failure)));
  }
  return report;
}

}  // namespace preserial::replica
