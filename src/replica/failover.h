#ifndef PRESERIAL_REPLICA_FAILOVER_H_
#define PRESERIAL_REPLICA_FAILOVER_H_

#include "common/status.h"
#include "replica/replica.h"

namespace preserial::replica {

// Promotes a backup after the primary dies:
//
//   1. elect the live backup with the highest applied LSN;
//   2. bump the group epoch and truncate the group log to the winner's LSN
//      — anything past it was acknowledged only by the fenced primary
//      (sync shipping makes that suffix empty);
//   3. flip the winner to the primary role; its replayed state machines
//      already hold every Sleeping transaction with the original
//      A_t_sleep / X_tc timestamps, so Algorithm 9's awake-check keeps
//      giving the paper's answers;
//   4. re-synthesize grant events for Active transactions, since backups
//      discard notifications while replaying (sessions' OnGranted is
//      idempotent, so over-notifying is safe);
//   5. rebuild the shipper over the surviving backups.
//
// The old primary stays fenced: records it might still try to ship carry
// the stale epoch and every replica rejects them (kFailedPrecondition).
class FailoverController {
 public:
  explicit FailoverController(ReplicatedGtm* group) : group_(group) {}

  // kFailedPrecondition while the primary is alive; kUnavailable when no
  // live backup remains.
  Result<PromotionReport> Promote();

 private:
  ReplicatedGtm* group_;
};

}  // namespace preserial::replica

#endif  // PRESERIAL_REPLICA_FAILOVER_H_
