#ifndef PRESERIAL_REPLICA_SHIP_H_
#define PRESERIAL_REPLICA_SHIP_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "replica/log.h"
#include "replica/node.h"

namespace preserial::replica {

// Sync: every command's records are delivered (and re-delivered through
// losses) to all live backups before the command returns — failover loses
// nothing. Async: Pump() ships a bounded window per round; the primary
// acknowledges clients ahead of the backups, and the gap is the
// replication lag a failover can lose.
enum class ShipMode { kSync, kAsync };

const char* ShipModeName(ShipMode mode);

struct ShipOptions {
  ShipMode mode = ShipMode::kSync;
  double loss = 0.0;       // Per-message drop probability (record and ack).
  double duplicate = 0.0;  // Chance a delivered record is delivered twice.
  uint64_t window = 64;    // Async: max send attempts per backup per Pump.
  // Sync gives up (Internal error) after this many consecutive losses on
  // one record — unreachable in practice for loss < 1.
  int max_sync_attempts = 10000;
};

struct ShipCounters {
  int64_t records_shipped = 0;  // Send attempts (including resends).
  int64_t records_acked = 0;    // Ack receipts that advanced a backup view.
  int64_t resends = 0;          // Attempts for an LSN already sent once.
  int64_t duplicates_delivered = 0;
  int64_t record_losses = 0;
  int64_t ack_losses = 0;
};

// Ships the group log to the backups over a lossy link, go-back-N style
// with cumulative acks. The shipper's per-backup acked view is its own —
// a lost ack leaves it stale, the record is resent, and the backup absorbs
// it as an idempotent duplicate. Losses are sampled from `rng` (the link
// is simulated; nodes are in-process).
class LogShipper {
 public:
  LogShipper(const ReplicaLog* log, ShipOptions options, Rng* rng)
      : log_(log), options_(options), rng_(rng) {}

  void AddBackup(ReplicaNode* node);
  void ClearBackups() { backups_.clear(); }

  // Sync mode: block (retrying losses) until every live backup acked the
  // whole log. Fails only on replica errors, never on losses.
  Status ShipAll();

  // Async mode: one windowed best-effort round per live backup.
  Status Pump();

  uint64_t AckedLsn(size_t backup) const { return backups_[backup].acked; }
  // Over live backups; the full log when none are live.
  uint64_t MinAckedLsn() const;
  uint64_t Lag() const;

  size_t num_backups() const { return backups_.size(); }
  ReplicaNode* backup(size_t i) { return backups_[i].node; }
  const ShipCounters& counters() const { return counters_; }
  const ShipOptions& options() const { return options_; }

 private:
  enum class ShipOutcome { kAcked, kLost, kDown, kRejected };

  struct BackupSlot {
    ReplicaNode* node = nullptr;
    uint64_t acked = 0;        // Shipper's view (cumulative).
    uint64_t max_shipped = 0;  // For resend accounting.
  };

  ShipOutcome ShipOne(BackupSlot* slot, const ReplicaRecord& rec);
  // Connection handshake: adopt the backup's durable LSN as the ack view
  // (covers both a restarted backup that lost its tail and acks we never
  // saw).
  void Resync(BackupSlot* slot);
  bool Chance(double p) { return p > 0 && rng_->NextDouble() < p; }

  const ReplicaLog* log_;
  ShipOptions options_;
  Rng* rng_;
  std::vector<BackupSlot> backups_;
  ShipCounters counters_;
};

}  // namespace preserial::replica

#endif  // PRESERIAL_REPLICA_SHIP_H_
