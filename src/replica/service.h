#ifndef PRESERIAL_REPLICA_SERVICE_H_
#define PRESERIAL_REPLICA_SERVICE_H_

#include <mutex>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "gtm/policies.h"
#include "replica/replica.h"

namespace preserial::replica {

// Thread-safe facade over a ReplicatedGtm for live (non-simulated) use:
// client threads issue commands, a housekeeping thread pumps async
// shipping, and a monitor thread can kill + promote — all serialized by
// one coarse mutex, same discipline as gtm::GtmService. Clients see
// kUnavailable (Begin: kInvalidTxnId) during the dead-primary window and
// are expected to retry, exactly like the simulated sessions do.
class ReplicaService {
 public:
  ReplicaService(gtm::GtmOptions gtm_options, ReplicaOptions options,
                 uint64_t ship_seed);

  ReplicaService(const ReplicaService&) = delete;
  ReplicaService& operator=(const ReplicaService&) = delete;

  // Setup-time access (bootstrap before spawning client threads).
  ReplicatedGtm* group() { return &group_; }

  Status CreateTable(const std::string& table, storage::Schema schema);
  Status InsertRow(const std::string& table, storage::Row row);
  Status RegisterObject(const gtm::ObjectId& id, const std::string& table,
                        const storage::Value& key,
                        std::vector<size_t> member_columns,
                        semantics::LogicalDependencies deps = {});

  TxnId Begin(int priority = 0);
  Status InvokeOnce(TxnId txn, uint64_t seq, const gtm::ObjectId& object,
                    semantics::MemberId member,
                    const semantics::Operation& op);
  Status CommitOnce(TxnId txn, uint64_t seq);
  Status AbortOnce(TxnId txn, uint64_t seq);
  Status SleepOnce(TxnId txn, uint64_t seq);
  Status AwakeOnce(TxnId txn, uint64_t seq);
  Result<gtm::TxnState> StateOf(TxnId txn);
  std::vector<gtm::GtmEvent> TakeEvents();

  Status Pump();
  void KillPrimary();
  bool primary_alive();
  Result<PromotionReport> Promote();
  uint64_t ReplicationLag();
  uint64_t Epoch();

 private:
  SystemClock clock_;
  Rng ship_rng_;
  ReplicatedGtm group_;
  std::mutex mu_;
};

}  // namespace preserial::replica

#endif  // PRESERIAL_REPLICA_SERVICE_H_
