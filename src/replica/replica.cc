#include "replica/replica.h"

#include <utility>

#include "common/strings.h"
#include "gtm/metrics.h"
#include "gtm/trace.h"
#include "replica/failover.h"
#include "storage/wal.h"

namespace preserial::replica {

ReplicatedGtm::ReplicatedGtm(const Clock* clock, gtm::GtmOptions gtm_options,
                             ReplicaOptions options, Rng* ship_rng)
    : clock_(clock),
      options_(options),
      shipper_(&log_, options.ship, ship_rng) {
  const size_t n = 1 + options_.num_backups;
  nodes_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::unique_ptr<storage::WalStorage> durable;
    if (options_.durable_node_logs) {
      durable = std::make_unique<storage::MemoryWalStorage>();
    }
    nodes_.push_back(std::make_unique<ReplicaNode>(
        StrFormat("replica-%zu", i), gtm_options, std::move(durable)));
  }
  nodes_[0]->set_role(ReplicaRole::kPrimary);
  for (size_t i = 1; i < n; ++i) shipper_.AddBackup(nodes_[i].get());
}

void ReplicatedGtm::UpdateLagGauge() {
  gtm::GtmCounters& c = primary_gtm()->metrics().counters();
  c.replication_lag_records = static_cast<int64_t>(shipper_.Lag());
  // One group has one shipper, so both gauges read the same here; they
  // diverge when snapshots merge across groups (sum vs worst group).
  c.replication_lag_max_records = c.replication_lag_records;
}

Status ReplicatedGtm::Run(ReplicaRecord* rec, Status* reply) {
  ReplicaNode* primary = nodes_[primary_].get();
  if (!primary->alive()) {
    return Status::Unavailable("replica: primary is down");
  }
  rec->lsn = log_.next_lsn();
  rec->epoch = epoch_;
  rec->time = clock_->Now();
  PRESERIAL_RETURN_IF_ERROR(primary->Apply(*rec));
  // Begin decides the id during dispatch; the log must carry the decision
  // so every backup can assert it derives the same one.
  if (rec->kind == ReplicaOpKind::kBegin) rec->txn = primary->last_begin();
  *reply = primary->last_reply();
  PRESERIAL_RETURN_IF_ERROR(log_.Append(*rec));
  gtm::TraceLog* trace = primary->gtm()->trace();
  if (trace->enabled()) {
    trace->Record(rec->time, gtm::TraceEventKind::kShip, rec->txn, rec->object,
                  StrFormat("lsn=%llu %s",
                            static_cast<unsigned long long>(rec->lsn),
                            ReplicaOpKindName(rec->kind)));
  }
  if (options_.ship.mode == ShipMode::kSync) {
    PRESERIAL_RETURN_IF_ERROR(shipper_.ShipAll());
    if (trace->enabled()) {
      trace->Record(rec->time, gtm::TraceEventKind::kShipAck, rec->txn, "",
                    StrFormat("acked=%llu", static_cast<unsigned long long>(
                                                shipper_.MinAckedLsn())));
    }
  }
  UpdateLagGauge();
  return Status::Ok();
}

Status ReplicatedGtm::RunReply(ReplicaRecord rec) {
  Status reply = Status::Ok();
  PRESERIAL_RETURN_IF_ERROR(Run(&rec, &reply));
  return reply;
}

Status ReplicatedGtm::Bootstrap(const storage::WalRecord& wr) {
  ReplicaRecord rec;
  rec.kind = ReplicaOpKind::kBootstrap;
  wr.EncodeTo(&rec.bootstrap);
  return RunReply(std::move(rec));
}

Status ReplicatedGtm::CreateTable(const std::string& table,
                                  storage::Schema schema) {
  storage::WalRecord wr;
  wr.type = storage::WalRecordType::kCreateTable;
  wr.table = table;
  wr.schema = std::move(schema);
  return Bootstrap(wr);
}

Status ReplicatedGtm::AddConstraint(const std::string& table,
                                    storage::CheckConstraint constraint) {
  storage::WalRecord wr;
  wr.type = storage::WalRecordType::kAddConstraint;
  wr.table = table;
  wr.constraint = std::move(constraint);
  return Bootstrap(wr);
}

Status ReplicatedGtm::InsertRow(const std::string& table, storage::Row row) {
  storage::WalRecord wr;
  wr.type = storage::WalRecordType::kInsert;
  wr.table = table;
  wr.row = std::move(row);
  return Bootstrap(wr);
}

Status ReplicatedGtm::RegisterObject(const gtm::ObjectId& id,
                                     const std::string& table,
                                     const storage::Value& key,
                                     std::vector<size_t> member_columns,
                                     semantics::LogicalDependencies deps) {
  ReplicaRecord rec;
  rec.kind = ReplicaOpKind::kRegisterObject;
  rec.object = id;
  rec.table = table;
  rec.key = key;
  rec.member_columns.assign(member_columns.begin(), member_columns.end());
  for (const auto& [a, b] : deps.CanonicalPairs()) {
    rec.dep_pairs.emplace_back(a, b);
  }
  return RunReply(std::move(rec));
}

TxnId ReplicatedGtm::Begin(int priority) {
  ReplicaRecord rec;
  rec.kind = ReplicaOpKind::kBegin;
  rec.priority = priority;
  Status reply = Status::Ok();
  if (!Run(&rec, &reply).ok() || !reply.ok()) return kInvalidTxnId;
  return nodes_[primary_]->last_begin();
}

Status ReplicatedGtm::Invoke(TxnId txn, const gtm::ObjectId& object,
                             semantics::MemberId member,
                             const semantics::Operation& op) {
  ReplicaRecord rec;
  rec.kind = ReplicaOpKind::kInvoke;
  rec.txn = txn;
  rec.object = object;
  rec.member = member;
  rec.op = op;
  return RunReply(std::move(rec));
}

Result<storage::Value> ReplicatedGtm::ReadLocal(TxnId txn,
                                                const gtm::ObjectId& object,
                                                semantics::MemberId member) {
  ReplicaRecord rec;
  rec.kind = ReplicaOpKind::kReadLocal;
  rec.txn = txn;
  rec.object = object;
  rec.member = member;
  PRESERIAL_RETURN_IF_ERROR(RunReply(std::move(rec)));
  return nodes_[primary_]->last_value();
}

Status ReplicatedGtm::RequestCommit(TxnId txn) {
  ReplicaRecord rec;
  rec.kind = ReplicaOpKind::kCommit;
  rec.txn = txn;
  return RunReply(std::move(rec));
}

Status ReplicatedGtm::RequestAbort(TxnId txn) {
  ReplicaRecord rec;
  rec.kind = ReplicaOpKind::kAbort;
  rec.txn = txn;
  return RunReply(std::move(rec));
}

Status ReplicatedGtm::Sleep(TxnId txn) {
  ReplicaRecord rec;
  rec.kind = ReplicaOpKind::kSleep;
  rec.txn = txn;
  return RunReply(std::move(rec));
}

Status ReplicatedGtm::Awake(TxnId txn) {
  ReplicaRecord rec;
  rec.kind = ReplicaOpKind::kAwake;
  rec.txn = txn;
  return RunReply(std::move(rec));
}

Status ReplicatedGtm::InvokeOnce(TxnId txn, uint64_t seq,
                                 const gtm::ObjectId& object,
                                 semantics::MemberId member,
                                 const semantics::Operation& op) {
  ReplicaRecord rec;
  rec.kind = ReplicaOpKind::kInvoke;
  rec.once = true;
  rec.seq = seq;
  rec.txn = txn;
  rec.object = object;
  rec.member = member;
  rec.op = op;
  return RunReply(std::move(rec));
}

Status ReplicatedGtm::CommitOnce(TxnId txn, uint64_t seq) {
  ReplicaRecord rec;
  rec.kind = ReplicaOpKind::kCommit;
  rec.once = true;
  rec.seq = seq;
  rec.txn = txn;
  return RunReply(std::move(rec));
}

Status ReplicatedGtm::AbortOnce(TxnId txn, uint64_t seq) {
  ReplicaRecord rec;
  rec.kind = ReplicaOpKind::kAbort;
  rec.once = true;
  rec.seq = seq;
  rec.txn = txn;
  return RunReply(std::move(rec));
}

Status ReplicatedGtm::SleepOnce(TxnId txn, uint64_t seq) {
  ReplicaRecord rec;
  rec.kind = ReplicaOpKind::kSleep;
  rec.once = true;
  rec.seq = seq;
  rec.txn = txn;
  return RunReply(std::move(rec));
}

Status ReplicatedGtm::AwakeOnce(TxnId txn, uint64_t seq) {
  ReplicaRecord rec;
  rec.kind = ReplicaOpKind::kAwake;
  rec.once = true;
  rec.seq = seq;
  rec.txn = txn;
  return RunReply(std::move(rec));
}

Result<gtm::TxnState> ReplicatedGtm::StateOf(TxnId txn) const {
  const ReplicaNode* primary = nodes_[primary_].get();
  if (!primary->alive()) {
    return Status::Unavailable("replica: primary is down");
  }
  return primary->gtm()->StateOf(txn);
}

std::vector<gtm::GtmEvent> ReplicatedGtm::TakeEvents() {
  std::vector<gtm::GtmEvent> out = std::move(pending_events_);
  pending_events_.clear();
  ReplicaNode* primary = nodes_[primary_].get();
  if (primary->alive()) {
    for (gtm::GtmEvent& e : primary->gtm()->TakeEvents()) {
      out.push_back(std::move(e));
    }
  }
  return out;
}

std::vector<TxnId> ReplicatedGtm::AbortExpiredWaits(Duration max_wait) {
  ReplicaRecord rec;
  rec.kind = ReplicaOpKind::kAbortExpiredWaits;
  rec.duration = max_wait;
  if (!RunReply(std::move(rec)).ok()) return {};
  return nodes_[primary_]->last_txns();
}

std::vector<TxnId> ReplicatedGtm::SleepIdleTransactions(
    Duration idle_timeout) {
  ReplicaRecord rec;
  rec.kind = ReplicaOpKind::kSleepIdle;
  rec.duration = idle_timeout;
  if (!RunReply(std::move(rec)).ok()) return {};
  return nodes_[primary_]->last_txns();
}

Status ReplicatedGtm::Prepare(TxnId txn) {
  ReplicaRecord rec;
  rec.kind = ReplicaOpKind::kPrepare;
  rec.txn = txn;
  return RunReply(std::move(rec));
}

Status ReplicatedGtm::CommitPrepared(TxnId txn) {
  ReplicaRecord rec;
  rec.kind = ReplicaOpKind::kCommitPrepared;
  rec.txn = txn;
  return RunReply(std::move(rec));
}

Status ReplicatedGtm::AbortPrepared(TxnId txn) {
  ReplicaRecord rec;
  rec.kind = ReplicaOpKind::kAbortPrepared;
  rec.txn = txn;
  return RunReply(std::move(rec));
}

Status ReplicatedGtm::Pump() {
  if (options_.ship.mode == ShipMode::kSync) return Status::Ok();
  if (!primary_alive()) return Status::Ok();
  PRESERIAL_RETURN_IF_ERROR(shipper_.Pump());
  gtm::TraceLog* trace = primary_gtm()->trace();
  if (trace->enabled()) {
    trace->Record(clock_->Now(), gtm::TraceEventKind::kShipAck, kInvalidTxnId,
                  "",
                  StrFormat("acked=%llu", static_cast<unsigned long long>(
                                              shipper_.MinAckedLsn())));
  }
  UpdateLagGauge();
  return Status::Ok();
}

void ReplicatedGtm::RebuildShipper() {
  shipper_.ClearBackups();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i == primary_ || !nodes_[i]->alive()) continue;
    shipper_.AddBackup(nodes_[i].get());
  }
}

Result<PromotionReport> ReplicatedGtm::Promote() {
  FailoverController controller(this);
  return controller.Promote();
}

}  // namespace preserial::replica
