#ifndef PRESERIAL_REPLICA_NODE_H_
#define PRESERIAL_REPLICA_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/status.h"
#include "gtm/gtm.h"
#include "gtm/policies.h"
#include "replica/log.h"
#include "storage/database.h"
#include "storage/wal.h"

namespace preserial::replica {

enum class ReplicaRole { kPrimary, kBackup };

// One replica of the GTM state machine: a private database + Gtm pair
// driven exclusively by ReplicaRecords. The replay clock is pinned to each
// record's timestamp before dispatch, so every node derives identical
// timestamps (A_t_sleep, X_tc) and identical TxnIds — the primary is just
// the replica whose Apply() happens first and whose replies clients see.
//
// Externally synchronized, like Gtm itself (ReplicaService adds the lock).
class ReplicaNode {
 public:
  // `log_storage` is the node's durable record log (framed ReplicaRecords,
  // same CRC framing as the database WAL); null disables durability and
  // Restart().
  ReplicaNode(std::string name, gtm::GtmOptions options,
              std::unique_ptr<storage::WalStorage> log_storage);

  // Transport-level apply. Returns:
  //   Ok                  — applied, or an already-applied LSN (idempotent
  //                         duplicate; counted, not re-dispatched).
  //   kUnavailable        — node is down.
  //   kFailedPrecondition — stale epoch (fenced) or an LSN gap; the shipper
  //                         re-syncs from last_applied() + 1.
  // The command's own reply (kWaiting, kDeadlock, ...) is last_reply().
  Status Apply(const ReplicaRecord& rec);

  // Command-level result of the most recent dispatched record.
  const Status& last_reply() const { return last_reply_; }
  TxnId last_begin() const { return last_begin_; }
  const storage::Value& last_value() const { return last_value_; }
  const std::vector<TxnId>& last_txns() const { return last_txns_; }

  // Crash-restart: wipes the in-memory state machines and replays the
  // durable log. A torn final record (crash mid-append) is dropped and the
  // log is rewritten to the clean prefix. Returns the last durable LSN.
  Result<uint64_t> Restart();

  bool alive() const { return alive_; }
  void Kill() { alive_ = false; }

  ReplicaRole role() const { return role_; }
  void set_role(ReplicaRole role) { role_ = role; }

  uint64_t epoch() const { return epoch_; }
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }

  uint64_t last_applied() const { return last_applied_; }
  int64_t duplicates_applied() const { return duplicates_applied_; }
  int64_t fenced_rejections() const { return fenced_rejections_; }

  const std::string& name() const { return name_; }
  gtm::Gtm* gtm() { return gtm_.get(); }
  const gtm::Gtm* gtm() const { return gtm_.get(); }
  storage::Database* db() { return db_.get(); }
  storage::WalStorage* log_storage() { return log_storage_.get(); }
  ManualClock* replay_clock() { return &clock_; }

 private:
  Status Dispatch(const ReplicaRecord& rec);
  void ResetStateMachines();

  std::string name_;
  gtm::GtmOptions options_;
  std::unique_ptr<storage::WalStorage> log_storage_;
  ManualClock clock_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<gtm::Gtm> gtm_;

  ReplicaRole role_ = ReplicaRole::kBackup;
  bool alive_ = true;
  bool replaying_ = false;
  uint64_t epoch_ = 0;
  uint64_t last_applied_ = 0;
  int64_t duplicates_applied_ = 0;
  int64_t fenced_rejections_ = 0;

  Status last_reply_ = Status::Ok();
  TxnId last_begin_ = kInvalidTxnId;
  storage::Value last_value_;
  std::vector<TxnId> last_txns_;
};

}  // namespace preserial::replica

#endif  // PRESERIAL_REPLICA_NODE_H_
