#include "replica/log.h"

#include <bit>

#include "common/strings.h"

namespace preserial::replica {

namespace {

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

bool GetU64(std::string_view buf, size_t* offset, uint64_t* v) {
  if (buf.size() - *offset < 8) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<unsigned char>(buf[*offset + i]))
         << (8 * i);
  }
  *offset += 8;
  *v = r;
  return true;
}

void PutString(std::string* out, std::string_view s) {
  PutU64(out, s.size());
  out->append(s);
}

Result<std::string> GetString(std::string_view buf, size_t* offset) {
  uint64_t n = 0;
  if (!GetU64(buf, offset, &n) || buf.size() - *offset < n) {
    return Status::Corruption("replica: truncated string");
  }
  std::string s(buf.substr(*offset, n));
  *offset += n;
  return s;
}

Result<uint8_t> GetU8(std::string_view buf, size_t* offset) {
  if (*offset >= buf.size()) {
    return Status::Corruption("replica: truncated byte");
  }
  return static_cast<uint8_t>(buf[(*offset)++]);
}

}  // namespace

const char* ReplicaOpKindName(ReplicaOpKind kind) {
  switch (kind) {
    case ReplicaOpKind::kBegin:
      return "BEGIN";
    case ReplicaOpKind::kInvoke:
      return "INVOKE";
    case ReplicaOpKind::kReadLocal:
      return "READ_LOCAL";
    case ReplicaOpKind::kCommit:
      return "COMMIT";
    case ReplicaOpKind::kAbort:
      return "ABORT";
    case ReplicaOpKind::kSleep:
      return "SLEEP";
    case ReplicaOpKind::kAwake:
      return "AWAKE";
    case ReplicaOpKind::kPrepare:
      return "PREPARE";
    case ReplicaOpKind::kCommitPrepared:
      return "COMMIT_PREPARED";
    case ReplicaOpKind::kAbortPrepared:
      return "ABORT_PREPARED";
    case ReplicaOpKind::kAbortExpiredWaits:
      return "ABORT_EXPIRED_WAITS";
    case ReplicaOpKind::kSleepIdle:
      return "SLEEP_IDLE";
    case ReplicaOpKind::kRegisterObject:
      return "REGISTER_OBJECT";
    case ReplicaOpKind::kBootstrap:
      return "BOOTSTRAP";
  }
  return "?";
}

void ReplicaRecord::EncodeTo(std::string* out) const {
  PutU64(out, lsn);
  PutU64(out, epoch);
  PutU64(out, std::bit_cast<uint64_t>(time));
  out->push_back(static_cast<char>(kind));
  out->push_back(once ? 1 : 0);
  PutU64(out, seq);
  PutU64(out, txn);
  PutU64(out, static_cast<uint64_t>(static_cast<int64_t>(priority)));
  PutString(out, object);
  PutU64(out, member);
  out->push_back(static_cast<char>(op.cls));
  out->push_back(op.inverse ? 1 : 0);
  op.operand.EncodeTo(out);
  PutU64(out, std::bit_cast<uint64_t>(duration));
  PutString(out, table);
  key.EncodeTo(out);
  PutU64(out, member_columns.size());
  for (uint64_t c : member_columns) PutU64(out, c);
  PutU64(out, dep_pairs.size());
  for (const auto& [a, b] : dep_pairs) {
    PutU64(out, a);
    PutU64(out, b);
  }
  PutString(out, bootstrap);
}

Result<ReplicaRecord> ReplicaRecord::DecodeFrom(std::string_view payload) {
  ReplicaRecord rec;
  size_t offset = 0;
  uint64_t bits = 0;
  if (!GetU64(payload, &offset, &rec.lsn) ||
      !GetU64(payload, &offset, &rec.epoch) ||
      !GetU64(payload, &offset, &bits)) {
    return Status::Corruption("replica: truncated record header");
  }
  rec.time = std::bit_cast<TimePoint>(bits);
  PRESERIAL_ASSIGN_OR_RETURN(uint8_t kind, GetU8(payload, &offset));
  rec.kind = static_cast<ReplicaOpKind>(kind);
  PRESERIAL_ASSIGN_OR_RETURN(uint8_t once, GetU8(payload, &offset));
  rec.once = once != 0;
  uint64_t priority = 0;
  if (!GetU64(payload, &offset, &rec.seq) ||
      !GetU64(payload, &offset, &rec.txn) ||
      !GetU64(payload, &offset, &priority)) {
    return Status::Corruption("replica: truncated record ids");
  }
  rec.priority = static_cast<int>(static_cast<int64_t>(priority));
  PRESERIAL_ASSIGN_OR_RETURN(rec.object, GetString(payload, &offset));
  uint64_t member = 0;
  if (!GetU64(payload, &offset, &member)) {
    return Status::Corruption("replica: truncated member");
  }
  rec.member = static_cast<semantics::MemberId>(member);
  PRESERIAL_ASSIGN_OR_RETURN(uint8_t cls, GetU8(payload, &offset));
  rec.op.cls = static_cast<semantics::OpClass>(cls);
  PRESERIAL_ASSIGN_OR_RETURN(uint8_t inverse, GetU8(payload, &offset));
  rec.op.inverse = inverse != 0;
  PRESERIAL_ASSIGN_OR_RETURN(rec.op.operand,
                             storage::Value::DecodeFrom(payload, &offset));
  if (!GetU64(payload, &offset, &bits)) {
    return Status::Corruption("replica: truncated duration");
  }
  rec.duration = std::bit_cast<Duration>(bits);
  PRESERIAL_ASSIGN_OR_RETURN(rec.table, GetString(payload, &offset));
  PRESERIAL_ASSIGN_OR_RETURN(rec.key,
                             storage::Value::DecodeFrom(payload, &offset));
  uint64_t n = 0;
  if (!GetU64(payload, &offset, &n) || payload.size() - offset < n * 8) {
    return Status::Corruption("replica: truncated member columns");
  }
  rec.member_columns.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t c = 0;
    GetU64(payload, &offset, &c);
    rec.member_columns.push_back(c);
  }
  if (!GetU64(payload, &offset, &n) || payload.size() - offset < n * 16) {
    return Status::Corruption("replica: truncated dependency pairs");
  }
  rec.dep_pairs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t a = 0;
    uint64_t b = 0;
    GetU64(payload, &offset, &a);
    GetU64(payload, &offset, &b);
    rec.dep_pairs.emplace_back(a, b);
  }
  PRESERIAL_ASSIGN_OR_RETURN(rec.bootstrap, GetString(payload, &offset));
  if (offset != payload.size()) {
    return Status::Corruption(
        StrFormat("replica: %zu trailing bytes after record",
                  payload.size() - offset));
  }
  return rec;
}

Status ReplicaLog::Append(ReplicaRecord rec) {
  if (rec.lsn != next_lsn()) {
    return Status::Internal(
        StrFormat("replica log: append lsn %llu, expected %llu",
                  static_cast<unsigned long long>(rec.lsn),
                  static_cast<unsigned long long>(next_lsn())));
  }
  records_.push_back(std::move(rec));
  return Status::Ok();
}

uint64_t ReplicaLog::TruncateTo(uint64_t new_last) {
  if (new_last >= records_.size()) return 0;
  const uint64_t dropped = records_.size() - new_last;
  records_.resize(new_last);
  return dropped;
}

}  // namespace preserial::replica
