#include "replica/node.h"

#include <utility>

#include "common/strings.h"
#include "semantics/compatibility.h"

namespace preserial::replica {

ReplicaNode::ReplicaNode(std::string name, gtm::GtmOptions options,
                         std::unique_ptr<storage::WalStorage> log_storage)
    : name_(std::move(name)),
      options_(options),
      log_storage_(std::move(log_storage)) {
  ResetStateMachines();
}

void ReplicaNode::ResetStateMachines() {
  gtm_.reset();
  db_ = std::make_unique<storage::Database>();
  gtm_ = std::make_unique<gtm::Gtm>(db_.get(), &clock_, options_);
  last_applied_ = 0;
  epoch_ = 0;
  last_reply_ = Status::Ok();
  last_begin_ = kInvalidTxnId;
  last_value_ = storage::Value();
  last_txns_.clear();
}

Status ReplicaNode::Apply(const ReplicaRecord& rec) {
  if (!alive_) return Status::Unavailable(name_ + ": node is down");
  if (rec.epoch < epoch_) {
    ++fenced_rejections_;
    return Status::FailedPrecondition(StrFormat(
        "%s: fenced: record epoch %llu < node epoch %llu", name_.c_str(),
        static_cast<unsigned long long>(rec.epoch),
        static_cast<unsigned long long>(epoch_)));
  }
  epoch_ = rec.epoch;
  if (rec.lsn <= last_applied_) {
    // Redelivered (ack lost, or an injected duplicate): already applied.
    ++duplicates_applied_;
    return Status::Ok();
  }
  if (rec.lsn != last_applied_ + 1) {
    return Status::FailedPrecondition(StrFormat(
        "%s: log gap: applied %llu, got %llu", name_.c_str(),
        static_cast<unsigned long long>(last_applied_),
        static_cast<unsigned long long>(rec.lsn)));
  }
  if (log_storage_ != nullptr && !replaying_) {
    std::string framed;
    std::string payload;
    rec.EncodeTo(&payload);
    storage::FramePayload(payload, &framed);
    PRESERIAL_RETURN_IF_ERROR(log_storage_->Append(framed));
  }
  // Dispatch under the decision's own timestamp: every replica derives the
  // same A_t_sleep / X_tc / last_activity values.
  clock_.Set(rec.time);
  last_reply_ = Dispatch(rec);
  last_applied_ = rec.lsn;
  // Backups have no sessions to notify; grant events are re-synthesized at
  // promotion instead.
  if (role_ == ReplicaRole::kBackup) (void)gtm_->TakeEvents();
  return Status::Ok();
}

Status ReplicaNode::Dispatch(const ReplicaRecord& rec) {
  switch (rec.kind) {
    case ReplicaOpKind::kBegin: {
      const TxnId t = gtm_->Begin(rec.priority);
      last_begin_ = t;
      if (rec.txn != kInvalidTxnId && t != rec.txn) {
        return Status::Internal(StrFormat(
            "%s: replica divergence: Begin gave %llu, log says %llu",
            name_.c_str(), static_cast<unsigned long long>(t),
            static_cast<unsigned long long>(rec.txn)));
      }
      return Status::Ok();
    }
    case ReplicaOpKind::kInvoke:
      return rec.once ? gtm_->InvokeOnce(rec.txn, rec.seq, rec.object,
                                         rec.member, rec.op)
                      : gtm_->Invoke(rec.txn, rec.object, rec.member, rec.op);
    case ReplicaOpKind::kReadLocal: {
      Result<storage::Value> r =
          gtm_->ReadLocal(rec.txn, rec.object, rec.member);
      if (!r.ok()) return r.status();
      last_value_ = std::move(r).value();
      return Status::Ok();
    }
    case ReplicaOpKind::kCommit:
      return rec.once ? gtm_->CommitOnce(rec.txn, rec.seq)
                      : gtm_->RequestCommit(rec.txn);
    case ReplicaOpKind::kAbort:
      return rec.once ? gtm_->AbortOnce(rec.txn, rec.seq)
                      : gtm_->RequestAbort(rec.txn);
    case ReplicaOpKind::kSleep:
      return rec.once ? gtm_->SleepOnce(rec.txn, rec.seq)
                      : gtm_->Sleep(rec.txn);
    case ReplicaOpKind::kAwake:
      return rec.once ? gtm_->AwakeOnce(rec.txn, rec.seq)
                      : gtm_->Awake(rec.txn);
    case ReplicaOpKind::kPrepare:
      return gtm_->Prepare(rec.txn);
    case ReplicaOpKind::kCommitPrepared:
      return gtm_->CommitPrepared(rec.txn);
    case ReplicaOpKind::kAbortPrepared:
      return gtm_->AbortPrepared(rec.txn);
    case ReplicaOpKind::kAbortExpiredWaits:
      last_txns_ = gtm_->AbortExpiredWaits(rec.duration);
      return Status::Ok();
    case ReplicaOpKind::kSleepIdle:
      last_txns_ = gtm_->SleepIdleTransactions(rec.duration);
      return Status::Ok();
    case ReplicaOpKind::kRegisterObject: {
      semantics::LogicalDependencies deps;
      for (const auto& [a, b] : rec.dep_pairs) {
        deps.AddDependency(static_cast<semantics::MemberId>(a),
                           static_cast<semantics::MemberId>(b));
      }
      std::vector<size_t> columns(rec.member_columns.begin(),
                                  rec.member_columns.end());
      return gtm_->RegisterObject(rec.object, rec.table, rec.key,
                                  std::move(columns), std::move(deps));
    }
    case ReplicaOpKind::kBootstrap: {
      PRESERIAL_ASSIGN_OR_RETURN(
          storage::WalRecord wr,
          storage::WalRecord::DecodeFrom(rec.bootstrap));
      switch (wr.type) {
        case storage::WalRecordType::kCreateTable: {
          Result<storage::Table*> t =
              db_->CreateTable(wr.table, std::move(wr.schema));
          return t.status();
        }
        case storage::WalRecordType::kAddConstraint:
          return db_->AddConstraint(wr.table, std::move(wr.constraint));
        case storage::WalRecordType::kInsert:
          return db_->InsertRow(wr.table, std::move(wr.row));
        default:
          return Status::Internal(
              StrFormat("%s: unsupported bootstrap record %s", name_.c_str(),
                        storage::WalRecordTypeName(wr.type)));
      }
    }
  }
  return Status::Internal(name_ + ": unknown replica op kind");
}

Result<uint64_t> ReplicaNode::Restart() {
  if (log_storage_ == nullptr) {
    return Status::FailedPrecondition(name_ +
                                      ": no durable log to restart from");
  }
  PRESERIAL_ASSIGN_OR_RETURN(std::string image, log_storage_->ReadAll());
  storage::FrameScanResult frames = storage::ScanFrames(image);
  PRESERIAL_RETURN_IF_ERROR(frames.status);
  if (frames.bytes_consumed < image.size()) {
    // Torn final record from a crash mid-append: rewrite the clean prefix so
    // future appends don't land after garbage.
    PRESERIAL_RETURN_IF_ERROR(log_storage_->Reset(
        std::string_view(image).substr(0, frames.bytes_consumed)));
  }
  ResetStateMachines();
  alive_ = true;
  replaying_ = true;
  for (const std::string& payload : frames.payloads) {
    Result<ReplicaRecord> rec = ReplicaRecord::DecodeFrom(payload);
    if (!rec.ok()) {
      replaying_ = false;
      return rec.status();
    }
    const Status applied = Apply(rec.value());
    if (!applied.ok()) {
      replaying_ = false;
      return applied;
    }
  }
  replaying_ = false;
  return last_applied_;
}

}  // namespace preserial::replica
