#ifndef PRESERIAL_MOBILE_RETRY_H_
#define PRESERIAL_MOBILE_RETRY_H_

#include "common/clock.h"
#include "common/random.h"

namespace preserial::mobile {

// Client-side retry discipline for requests over a LossyChannel: each
// attempt gets `request_timeout` to produce a reply; a silent attempt is
// followed by exponential backoff with jitter, up to `max_attempts` total
// attempts. What happens when the budget is exhausted is the caller's
// policy (the fault-tolerant session degrades into the paper's Sleep state
// instead of aborting).
struct RetryPolicy {
  Duration request_timeout = 1.0;   // Per-attempt reply deadline.
  Duration initial_backoff = 0.25;  // Pause before the second attempt.
  double backoff_multiplier = 2.0;
  Duration max_backoff = 8.0;
  // Uniform jitter fraction: the backoff is scaled by a factor drawn from
  // [1 - jitter, 1 + jitter] to decorrelate retry storms.
  double jitter = 0.5;
  int max_attempts = 5;  // Total attempts (first try included).

  // Pause between attempt number `completed_attempts` (1-based, just timed
  // out) and the next one.
  Duration BackoffBeforeAttempt(int completed_attempts, Rng& rng) const;
};

}  // namespace preserial::mobile

#endif  // PRESERIAL_MOBILE_RETRY_H_
