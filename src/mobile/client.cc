#include "mobile/client.h"

namespace preserial::mobile {

void ArrivalProcess::Schedule(size_t count,
                              const std::function<void(size_t)>& on_arrival) {
  TimePoint t = sim_->Now();
  for (size_t i = 0; i < count; ++i) {
    sim_->At(t, [on_arrival, i] { on_arrival(i); });
    t += interarrival_->Sample(*rng_);
  }
}

void RequestStub::Send(ExecuteFn execute, ReplyFn on_reply,
                       ExhaustedFn on_exhausted) {
  ++epoch_;
  replied_ = false;
  attempt_ = 0;
  execute_ = std::move(execute);
  on_reply_ = std::move(on_reply);
  on_exhausted_ = std::move(on_exhausted);
  Attempt();
}

void RequestStub::Attempt() {
  ++attempt_;
  if (attempt_ > 1) {
    ++retries_;
    if (on_retry_) on_retry_(attempt_);
  }
  const uint64_t epoch = epoch_;
  // Request direction: each surviving copy reaches the middleware and
  // executes there; the reply crosses the channel independently. The
  // execute closure is captured by value so copies still in flight when a
  // new request starts execute the *original* request (late duplicates).
  for (Duration d : channel_->SampleDeliveries(*rng_)) {
    sim_->After(d, [this, epoch, execute = execute_] {
      const Status reply = execute();
      // A dead endpoint (replica primary down, failover in progress) is a
      // request that fell into the void, not a reply: stay silent and let
      // the timeout/backoff path retry until the promoted primary answers.
      if (reply.code() == StatusCode::kUnavailable) return;
      for (Duration r : channel_->SampleDeliveries(*rng_)) {
        sim_->After(r, [this, epoch, reply] {
          if (epoch != epoch_ || replied_) return;
          replied_ = true;
          // Local copy: the callback may Send() a follow-up request, which
          // replaces on_reply_ while it runs.
          const ReplyFn cb = on_reply_;
          cb(reply);
        });
      }
    });
  }
  // Attempt deadline: if no reply landed, back off and try again (or give
  // up once the budget is spent).
  sim_->After(policy_.request_timeout, [this, epoch, attempt = attempt_] {
    if (epoch != epoch_ || replied_ || attempt != attempt_) return;
    if (attempt_ >= policy_.max_attempts) {
      const ExhaustedFn cb = on_exhausted_;
      cb();
      return;
    }
    const Duration backoff = policy_.BackoffBeforeAttempt(attempt_, *rng_);
    sim_->After(backoff, [this, epoch] {
      if (epoch != epoch_ || replied_) return;
      Attempt();
    });
  });
}

}  // namespace preserial::mobile
