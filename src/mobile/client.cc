#include "mobile/client.h"

namespace preserial::mobile {

void ArrivalProcess::Schedule(size_t count,
                              const std::function<void(size_t)>& on_arrival) {
  TimePoint t = sim_->Now();
  for (size_t i = 0; i < count; ++i) {
    sim_->At(t, [on_arrival, i] { on_arrival(i); });
    t += interarrival_->Sample(*rng_);
  }
}

}  // namespace preserial::mobile
