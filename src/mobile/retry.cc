#include "mobile/retry.h"

#include <algorithm>

namespace preserial::mobile {

Duration RetryPolicy::BackoffBeforeAttempt(int completed_attempts,
                                           Rng& rng) const {
  Duration base = initial_backoff;
  for (int i = 1; i < completed_attempts; ++i) {
    base *= backoff_multiplier;
    if (base >= max_backoff) break;
  }
  base = std::min(base, max_backoff);
  const double lo = std::max(0.0, 1.0 - jitter);
  const double hi = 1.0 + jitter;
  return base * (lo + (hi - lo) * rng.NextDouble());
}

}  // namespace preserial::mobile
