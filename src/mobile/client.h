#ifndef PRESERIAL_MOBILE_CLIENT_H_
#define PRESERIAL_MOBILE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"
#include "mobile/network.h"
#include "mobile/retry.h"
#include "sim/distributions.h"
#include "sim/simulator.h"

namespace preserial::mobile {

// Arrival process of a client population: schedules `count` session starts
// at sampled interarrival times (the paper fixes 0.5 s between arrivals;
// the Poisson variant feeds the contention ablations). The callback
// receives the arrival index (the paper's label λ).
class ArrivalProcess {
 public:
  ArrivalProcess(sim::Simulator* simulator,
                 std::unique_ptr<sim::Distribution> interarrival, Rng* rng)
      : sim_(simulator), interarrival_(std::move(interarrival)), rng_(rng) {}

  static ArrivalProcess Fixed(sim::Simulator* simulator, Duration gap,
                              Rng* rng) {
    return ArrivalProcess(simulator, std::make_unique<sim::ConstantDist>(gap),
                          rng);
  }
  static ArrivalProcess Poisson(sim::Simulator* simulator, Duration mean_gap,
                                Rng* rng) {
    return ArrivalProcess(
        simulator, std::make_unique<sim::ExponentialDist>(mean_gap), rng);
  }

  // Schedules all arrivals now; the simulator fires them as time advances.
  void Schedule(size_t count, const std::function<void(size_t)>& on_arrival);

 private:
  sim::Simulator* sim_;
  std::unique_ptr<sim::Distribution> interarrival_;
  Rng* rng_;
};

// Client end of one logical request travelling over a LossyChannel, with
// the full at-least-once machinery: every attempt puts one message on the
// channel (which may drop, duplicate, reorder or delay it), each delivered
// copy executes the server-side closure (the GTM's *Once endpoints absorb
// redeliveries), the reply crosses the channel again, and the first reply
// to arrive completes the request. A silent attempt retries after
// exponential backoff with jitter until the policy's budget runs out.
//
// One stub serves one session: requests are issued one at a time via
// Send(); a new Send (or Cancel) invalidates the replies of the previous
// logical request, while its in-flight server deliveries still land — late
// duplicates are exactly what the dedup layer must absorb.
class RequestStub {
 public:
  // Runs at the middleware when a request copy arrives.
  using ExecuteFn = std::function<Status()>;
  // Runs at the client when the first reply copy arrives.
  using ReplyFn = std::function<void(const Status&)>;
  // Runs at the client when the retry budget is exhausted.
  using ExhaustedFn = std::function<void()>;

  RequestStub(sim::Simulator* sim, const LossyChannel* channel, Rng* rng,
              RetryPolicy policy)
      : sim_(sim), channel_(channel), rng_(rng), policy_(policy) {}

  RequestStub(const RequestStub&) = delete;
  RequestStub& operator=(const RequestStub&) = delete;

  void Send(ExecuteFn execute, ReplyFn on_reply, ExhaustedFn on_exhausted);
  // Drops the pending request: late replies are ignored, no more retries.
  void Cancel() { ++epoch_; }

  // Observer invoked on every attempt beyond the first of a logical
  // request, with the attempt number (2, 3, ...). Tracing hook: sessions
  // record kClientRetry here.
  void set_on_retry(std::function<void(int)> fn) { on_retry_ = std::move(fn); }

  // Attempts beyond the first, across all requests of this stub.
  int64_t retries() const { return retries_; }

 private:
  void Attempt();

  sim::Simulator* sim_;
  const LossyChannel* channel_;
  Rng* rng_;
  RetryPolicy policy_;
  ExecuteFn execute_;
  ReplyFn on_reply_;
  ExhaustedFn on_exhausted_;
  std::function<void(int)> on_retry_;
  // Guards stale timers and replies: each logical request is an epoch.
  uint64_t epoch_ = 0;
  bool replied_ = false;
  int attempt_ = 0;
  int64_t retries_ = 0;
};

}  // namespace preserial::mobile

#endif  // PRESERIAL_MOBILE_CLIENT_H_
