#ifndef PRESERIAL_MOBILE_CLIENT_H_
#define PRESERIAL_MOBILE_CLIENT_H_

#include <functional>
#include <memory>

#include "common/clock.h"
#include "common/random.h"
#include "sim/distributions.h"
#include "sim/simulator.h"

namespace preserial::mobile {

// Arrival process of a client population: schedules `count` session starts
// at sampled interarrival times (the paper fixes 0.5 s between arrivals;
// the Poisson variant feeds the contention ablations). The callback
// receives the arrival index (the paper's label λ).
class ArrivalProcess {
 public:
  ArrivalProcess(sim::Simulator* simulator,
                 std::unique_ptr<sim::Distribution> interarrival, Rng* rng)
      : sim_(simulator), interarrival_(std::move(interarrival)), rng_(rng) {}

  static ArrivalProcess Fixed(sim::Simulator* simulator, Duration gap,
                              Rng* rng) {
    return ArrivalProcess(simulator, std::make_unique<sim::ConstantDist>(gap),
                          rng);
  }
  static ArrivalProcess Poisson(sim::Simulator* simulator, Duration mean_gap,
                                Rng* rng) {
    return ArrivalProcess(
        simulator, std::make_unique<sim::ExponentialDist>(mean_gap), rng);
  }

  // Schedules all arrivals now; the simulator fires them as time advances.
  void Schedule(size_t count, const std::function<void(size_t)>& on_arrival);

 private:
  sim::Simulator* sim_;
  std::unique_ptr<sim::Distribution> interarrival_;
  Rng* rng_;
};

}  // namespace preserial::mobile

#endif  // PRESERIAL_MOBILE_CLIENT_H_
