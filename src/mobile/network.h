#ifndef PRESERIAL_MOBILE_NETWORK_H_
#define PRESERIAL_MOBILE_NETWORK_H_

#include <memory>

#include "common/clock.h"
#include "common/random.h"
#include "sim/distributions.h"

namespace preserial::mobile {

// Latency model for the wireless hop between a client and the middleware:
// each request/response pays one sampled delay. Zero by default so that the
// paper's experiments (which ignore transport latency) stay exact; the
// latency ablation turns it on.
class NetworkModel {
 public:
  // No latency.
  NetworkModel();
  // Fixed one-way latency.
  explicit NetworkModel(Duration fixed);
  // Sampled one-way latency.
  explicit NetworkModel(std::unique_ptr<sim::Distribution> latency);

  // One-way delay for the next message.
  Duration SampleDelay(Rng& rng) const;
  // Round trip (request + response).
  Duration SampleRtt(Rng& rng) const {
    return SampleDelay(rng) + SampleDelay(rng);
  }

  double mean_delay() const;

 private:
  std::unique_ptr<sim::Distribution> latency_;  // Null => zero latency.
};

}  // namespace preserial::mobile

#endif  // PRESERIAL_MOBILE_NETWORK_H_
