#ifndef PRESERIAL_MOBILE_NETWORK_H_
#define PRESERIAL_MOBILE_NETWORK_H_

#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "sim/distributions.h"

namespace preserial::mobile {

// Latency model for the wireless hop between a client and the middleware:
// each request/response pays one sampled delay. Zero by default so that the
// paper's experiments (which ignore transport latency) stay exact; the
// latency ablation turns it on.
class NetworkModel {
 public:
  // No latency.
  NetworkModel();
  // Fixed one-way latency.
  explicit NetworkModel(Duration fixed);
  // Sampled one-way latency.
  explicit NetworkModel(std::unique_ptr<sim::Distribution> latency);

  // One-way delay for the next message.
  Duration SampleDelay(Rng& rng) const;
  // Round trip (request + response).
  Duration SampleRtt(Rng& rng) const {
    return SampleDelay(rng) + SampleDelay(rng);
  }

  double mean_delay() const;

 private:
  std::unique_ptr<sim::Distribution> latency_;  // Null => zero latency.
};

// Fault rates of an unreliable wireless hop. All probabilities are per
// message copy and independent.
struct ChannelFaults {
  double loss = 0.0;       // P(a copy never arrives).
  double duplicate = 0.0;  // P(an extra copy is injected).
  double reorder = 0.0;    // P(a copy is held back by an extra delay).
  // Mean of the exponential extra delay a reordered copy pays (enough to
  // overtake later messages under typical latencies).
  Duration reorder_delay_mean = 0.5;
};

// An unreliable channel: the latency model plus drop/duplicate/reorder
// faults. One logical send becomes zero or more deliveries, each with its
// own arrival delay — an empty sample means the message was lost. The
// channel is direction-agnostic; requests and replies sample independently.
class LossyChannel {
 public:
  // Running totals, aggregated over both directions.
  struct Counters {
    int64_t messages = 0;    // Logical sends.
    int64_t delivered = 0;   // Copies that arrived.
    int64_t dropped = 0;     // Copies lost in flight.
    int64_t duplicated = 0;  // Extra copies injected.
    int64_t reordered = 0;   // Copies that paid the reorder delay.
  };

  LossyChannel() = default;
  LossyChannel(NetworkModel latency, ChannelFaults faults)
      : latency_(std::move(latency)), faults_(faults) {}

  // Arrival delays for one logical message: usually {delay}, possibly
  // empty (lost) or longer (duplicated). Every copy — original or
  // duplicate — is dropped, delayed and reordered independently.
  std::vector<Duration> SampleDeliveries(Rng& rng) const;

  const NetworkModel& latency() const { return latency_; }
  const ChannelFaults& faults() const { return faults_; }
  const Counters& counters() const { return counters_; }
  void ResetCounters() { counters_ = Counters{}; }

 private:
  NetworkModel latency_;
  ChannelFaults faults_;
  // Sampling is logically const; the tallies are observability only.
  mutable Counters counters_;
};

}  // namespace preserial::mobile

#endif  // PRESERIAL_MOBILE_NETWORK_H_
