#ifndef PRESERIAL_MOBILE_DISCONNECT_MODEL_H_
#define PRESERIAL_MOBILE_DISCONNECT_MODEL_H_

#include <memory>

#include "common/clock.h"
#include "common/random.h"
#include "sim/distributions.h"

namespace preserial::mobile {

// One client's sampled disconnection behaviour for a transaction.
struct DisconnectPlan {
  bool disconnects = false;
  // Offset into the transaction's execution at which the link drops.
  Duration offset = 0;
  // How long the client stays away before reconnecting.
  Duration duration = 0;
};

// Bernoulli(β) disconnection model with pluggable offset/duration
// distributions — the paper's mobile-environment assumption that "all
// disconnections take place during the transaction execution".
class DisconnectModel {
 public:
  // `probability` is the paper's β. Offset is sampled uniformly over
  // [0, work_span) of the transaction; duration from `duration_dist`.
  DisconnectModel(double probability,
                  std::unique_ptr<sim::Distribution> duration_dist);

  // Convenience: exponential reconnection delay with the given mean.
  static DisconnectModel WithExponentialDuration(double probability,
                                                 double mean_duration);

  DisconnectPlan Sample(Rng& rng, Duration work_span) const;

  double probability() const { return probability_; }
  double mean_duration() const { return duration_dist_->Mean(); }

 private:
  double probability_;
  std::unique_ptr<sim::Distribution> duration_dist_;
};

}  // namespace preserial::mobile

#endif  // PRESERIAL_MOBILE_DISCONNECT_MODEL_H_
