#include "mobile/session.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace preserial::mobile {

const char* AbortCauseName(AbortCause c) {
  switch (c) {
    case AbortCause::kNone:
      return "none";
    case AbortCause::kDeadlock:
      return "deadlock";
    case AbortCause::kAwakeConflict:
      return "awake-conflict";
    case AbortCause::kConstraint:
      return "constraint";
    case AbortCause::kLockWaitTimeout:
      return "lock-wait-timeout";
    case AbortCause::kDisconnectTimeout:
      return "disconnect-timeout";
    case AbortCause::kChannelLoss:
      return "channel-loss";
    case AbortCause::kOther:
      return "other";
  }
  return "?";
}

// --- GtmSession ---------------------------------------------------------------

GtmSession::GtmSession(gtm::GtmEndpoint* gtm, sim::Simulator* simulator, TxnPlan plan,
                       PumpFn pump, DoneFn done, gtm::TraceLog* client_trace)
    : gtm_(gtm),
      sim_(simulator),
      plan_(std::move(plan)),
      pump_(std::move(pump)),
      done_(std::move(done)),
      client_trace_(client_trace) {}

void GtmSession::RecordClient(gtm::TraceEventKind kind, std::string detail) {
  if (client_trace_ == nullptr) return;
  client_trace_->Record(sim_->Now(), kind, txn_, plan_.object,
                        std::move(detail));
}

void GtmSession::Start() {
  stats_.arrival = sim_->Now();
  stats_.disconnected = plan_.disconnect.disconnects;
  stats_.tag = plan_.tag;
  stats_.shard = plan_.shard;
  // One trace per transaction, rooted at the client: every GTM call below
  // runs under a child span, so the server-side events it records stitch
  // into this trace.
  ctx_ = obs::NewRootContext();
  {
    obs::SpanScope span(obs::ChildOf(ctx_));
    txn_ = gtm_->Begin();
  }
  stats_.txn = txn_;
  if (plan_.invoke_delay > 0) {
    sim_->After(plan_.invoke_delay, [this] { DoInvoke(); });
    return;
  }
  DoInvoke();
}

void GtmSession::DoInvoke() {
  obs::SpanScope span(obs::ChildOf(ctx_));
  RecordClient(gtm::TraceEventKind::kClientSend, "invoke");
  const Status s = gtm_->Invoke(txn_, plan_.object, plan_.member, plan_.op);
  switch (s.code()) {
    case StatusCode::kOk:
      ProceedAfterGrant();
      break;
    case StatusCode::kWaiting:
      // Parked; OnGranted will resume us.
      break;
    case StatusCode::kDeadlock:
      (void)gtm_->RequestAbort(txn_);
      Finish(false, AbortCause::kDeadlock);
      break;
    case StatusCode::kConstraintViolation:
      (void)gtm_->RequestAbort(txn_);
      Finish(false, AbortCause::kConstraint);
      break;
    default:
      (void)gtm_->RequestAbort(txn_);
      Finish(false, AbortCause::kOther);
      break;
  }
  pump_();
}

void GtmSession::OnGranted() {
  if (finished_ || granted_) return;
  ProceedAfterGrant();
}

void GtmSession::OnSystemAbort(AbortCause cause) {
  if (finished_) return;
  Finish(false, cause);
}

void GtmSession::ProceedAfterGrant() {
  granted_ = true;
  if (plan_.disconnect.disconnects) {
    const Duration pre = std::min(plan_.disconnect.offset, plan_.work_time);
    sim_->After(pre, [this] { DoSleep(); });
  } else {
    sim_->After(plan_.work_time + plan_.commit_delay, [this] { DoCommit(); });
  }
}

void GtmSession::DoSleep() {
  if (finished_) return;
  obs::SpanScope span(obs::ChildOf(ctx_));
  RecordClient(gtm::TraceEventKind::kClientSend, "sleep");
  const Status s = gtm_->Sleep(txn_);
  if (!s.ok()) {
    // Sleeping disabled (ablation): the disconnection killed us.
    Finish(false, AbortCause::kAwakeConflict);
    pump_();
    return;
  }
  sim_->After(plan_.disconnect.duration, [this] { DoAwake(); });
  pump_();
}

void GtmSession::DoAwake() {
  if (finished_) return;
  obs::SpanScope span(obs::ChildOf(ctx_));
  RecordClient(gtm::TraceEventKind::kClientSend, "awake");
  const Status s = gtm_->Awake(txn_);
  if (!s.ok()) {
    Finish(false, s.code() == StatusCode::kAborted
                      ? AbortCause::kAwakeConflict
                      : AbortCause::kOther);
    pump_();
    return;
  }
  const Duration post = std::max(
      0.0, plan_.work_time - std::min(plan_.disconnect.offset,
                                      plan_.work_time));
  sim_->After(post + plan_.commit_delay, [this] { DoCommit(); });
  pump_();
}

void GtmSession::DoCommit() {
  if (finished_) return;
  obs::SpanScope span(obs::ChildOf(ctx_));
  RecordClient(gtm::TraceEventKind::kClientSend, "commit");
  const Status s = gtm_->RequestCommit(txn_);
  if (s.ok()) {
    Finish(true, AbortCause::kNone);
  } else {
    Finish(false, AbortCause::kConstraint);
  }
  pump_();
}

void GtmSession::Finish(bool committed, AbortCause cause) {
  if (finished_) return;
  finished_ = true;
  stats_.finish = sim_->Now();
  stats_.committed = committed;
  stats_.cause = cause;
  done_(stats_);
}

// --- FaultTolerantGtmSession ----------------------------------------------------

FaultTolerantGtmSession::FaultTolerantGtmSession(
    gtm::GtmEndpoint* gtm, sim::Simulator* simulator, const LossyChannel* channel,
    Rng* rng, FtPlan plan, PumpFn pump, DoneFn done, gtm::TraceLog* client_trace)
    : gtm_(gtm),
      sim_(simulator),
      plan_(std::move(plan)),
      pump_(std::move(pump)),
      done_(std::move(done)),
      client_trace_(client_trace),
      stub_(simulator, channel, rng, plan_.retry) {
  stub_.set_on_retry([this](int attempt) {
    obs::SpanScope span(obs::ChildOf(ctx_));
    RecordClient(gtm::TraceEventKind::kClientRetry,
                 StrFormat("attempt=%d", attempt));
  });
}

void FaultTolerantGtmSession::RecordClient(gtm::TraceEventKind kind,
                                           std::string detail) {
  if (client_trace_ == nullptr) return;
  client_trace_->Record(sim_->Now(), kind, txn_, plan_.base.object,
                        std::move(detail));
}

void FaultTolerantGtmSession::Start() {
  if (!started_) {
    started_ = true;
    stats_.arrival = sim_->Now();
    stats_.tag = plan_.base.tag;
    stats_.shard = plan_.base.shard;
    ctx_ = obs::NewRootContext();
  }
  // Session establishment is reliable (see class comment); everything after
  // Begin crosses the lossy channel. A replica group whose primary just
  // died refuses new sessions (kInvalidTxnId): retry after the per-attempt
  // deadline until a promoted primary accepts us.
  obs::SpanScope span(obs::ChildOf(ctx_));
  txn_ = gtm_->Begin();
  if (txn_ == kInvalidTxnId) {
    sim_->After(plan_.retry.request_timeout, [this] {
      if (!finished_) Start();
    });
    return;
  }
  stats_.txn = txn_;
  SendInvoke();
}

void FaultTolerantGtmSession::SendInvoke() {
  if (invoke_seq_ == 0) invoke_seq_ = next_seq_++;
  const TxnPlan& base = plan_.base;
  // The request carries its span across the channel: the closure executes
  // at the middleware (possibly more than once) under the span of the
  // logical request, not whatever the simulator happened to be running.
  const obs::TraceContext req = obs::ChildOf(ctx_);
  {
    obs::SpanScope span(req);
    RecordClient(gtm::TraceEventKind::kClientSend, "invoke");
  }
  stub_.Send(
      /*execute=*/[gtm = gtm_, pump = pump_, txn = txn_, seq = invoke_seq_,
                   base, req] {
        obs::SpanScope span(req);
        const Status s =
            gtm->InvokeOnce(txn, seq, base.object, base.member, base.op);
        pump();  // Server-side effects may admit other sessions' waiters.
        return s;
      },
      /*on_reply=*/[this](const Status& s) { OnInvokeReply(s); },
      /*on_exhausted=*/[this] { OnExhausted(); });
}

void FaultTolerantGtmSession::OnInvokeReply(const Status& s) {
  if (finished_ || phase_ != Phase::kInvoke) return;  // Stale reply.
  obs::SpanScope span(obs::ChildOf(ctx_));  // Covers the abort paths below.
  switch (s.code()) {
    case StatusCode::kOk:
      ProceedAfterGrant();
      break;
    case StatusCode::kWaiting:
      // Parked; the (reliable) grant notification resumes us.
      break;
    case StatusCode::kDeadlock:
      (void)gtm_->RequestAbort(txn_);
      Finish(false, AbortCause::kDeadlock);
      break;
    case StatusCode::kConstraintViolation:
      (void)gtm_->RequestAbort(txn_);
      Finish(false, AbortCause::kConstraint);
      break;
    case StatusCode::kAborted:
      Finish(false, AbortCause::kOther);
      break;
    default:
      (void)gtm_->RequestAbort(txn_);
      Finish(false, AbortCause::kOther);
      break;
  }
  pump_();
}

void FaultTolerantGtmSession::OnGranted() {
  if (finished_ || granted_) return;
  ProceedAfterGrant();
}

void FaultTolerantGtmSession::OnSystemAbort(AbortCause cause) {
  if (finished_) return;
  Finish(false, cause);
}

void FaultTolerantGtmSession::ProceedAfterGrant() {
  if (phase_ != Phase::kInvoke) return;
  granted_ = true;
  phase_ = Phase::kWorking;
  stub_.Cancel();  // A late kWaiting reply must not re-park us.
  sim_->After(plan_.base.work_time, [this] { SendCommit(); });
}

void FaultTolerantGtmSession::SendCommit() {
  if (finished_) return;
  phase_ = Phase::kCommit;
  if (commit_seq_ == 0) commit_seq_ = next_seq_++;
  const obs::TraceContext req = obs::ChildOf(ctx_);
  {
    obs::SpanScope span(req);
    RecordClient(gtm::TraceEventKind::kClientSend, "commit");
  }
  stub_.Send(
      /*execute=*/[gtm = gtm_, pump = pump_, txn = txn_, seq = commit_seq_,
                   req] {
        obs::SpanScope span(req);
        const Status s = gtm->CommitOnce(txn, seq);
        pump();  // The commit releases admissions for other waiters.
        return s;
      },
      /*on_reply=*/[this](const Status& s) { OnCommitReply(s); },
      /*on_exhausted=*/[this] { OnExhausted(); });
}

void FaultTolerantGtmSession::OnCommitReply(const Status& s) {
  if (finished_ || phase_ != Phase::kCommit) return;
  if (s.ok()) {
    Finish(true, AbortCause::kNone);
  } else if (s.code() == StatusCode::kFailedPrecondition) {
    // The transaction was no longer committable (e.g. system-aborted while
    // the request was in flight).
    Finish(false, AbortCause::kOther);
  } else {
    Finish(false, AbortCause::kConstraint);
  }
  pump_();
}

void FaultTolerantGtmSession::OnExhausted() {
  if (finished_) return;
  if (plan_.mode == FtMode::kAbortOnLoss || degrades_ >= plan_.max_degrades) {
    GiveUp();
    return;
  }
  ++degrades_;
  ++stats_.degraded_sleeps;
  stats_.disconnected = true;
  obs::SpanScope span(obs::ChildOf(ctx_));
  RecordClient(gtm::TraceEventKind::kClientDegrade,
               StrFormat("episode=%d", degrades_));
  // The client is effectively offline; the middleware's inactivity oracle
  // Ξ (Alg 8) parks it rather than aborting. Modeling note: we invoke
  // Sleep directly — a server-side decision needs no channel crossing.
  Result<gtm::TxnState> st = gtm_->StateOf(txn_);
  if (st.ok() && (st.value() == gtm::TxnState::kActive ||
                  st.value() == gtm::TxnState::kWaiting)) {
    const Status s = gtm_->Sleep(txn_);
    if (!s.ok() && s.code() == StatusCode::kAborted) {
      // Sleeping disabled (ablation): the outage killed the transaction.
      Finish(false, AbortCause::kChannelLoss);
      pump_();
      return;
    }
    pump_();  // Parking a holder can admit waiters.
  }
  sim_->After(plan_.reconnect_delay, [this] { Reconnect(); });
}

void FaultTolerantGtmSession::Reconnect() {
  if (finished_) return;
  obs::SpanScope reconnect_span(obs::ChildOf(ctx_));
  RecordClient(gtm::TraceEventKind::kClientReconnect, "");
  Result<gtm::TxnState> st = gtm_->StateOf(txn_);
  if (!st.ok() || st.value() != gtm::TxnState::kSleeping) {
    // Not parked (e.g. the lost request had already committed or aborted
    // us): resend the pending request and learn the outcome from the
    // reply cache.
    ResendPending();
    return;
  }
  const uint64_t awake_seq = next_seq_++;
  const obs::TraceContext req = obs::ChildOf(ctx_);
  {
    obs::SpanScope span(req);
    RecordClient(gtm::TraceEventKind::kClientSend, "awake");
  }
  stub_.Send(
      /*execute=*/[gtm = gtm_, pump = pump_, txn = txn_, awake_seq, req] {
        obs::SpanScope span(req);
        const Status s = gtm->AwakeOnce(txn, awake_seq);
        pump();
        return s;
      },
      /*on_reply=*/[this](const Status& s) {
        if (finished_) return;
        if (s.ok() || s.code() == StatusCode::kFailedPrecondition) {
          // Awake succeeded (or the transaction was no longer sleeping —
          // e.g. a duplicate awake already landed); push the pending
          // request through.
          ResendPending();
          return;
        }
        Finish(false, s.code() == StatusCode::kAborted
                          ? AbortCause::kAwakeConflict
                          : AbortCause::kOther);
        pump_();
      },
      /*on_exhausted=*/[this] { OnExhausted(); });
}

void FaultTolerantGtmSession::ResendPending() {
  switch (phase_) {
    case Phase::kInvoke:
      SendInvoke();
      return;
    case Phase::kWorking:
      // The outage hit during user work; nothing is pending with the
      // middleware, so just let the work timer (already scheduled) fire.
      return;
    case Phase::kCommit:
      SendCommit();
      return;
    case Phase::kDone:
      return;
  }
}

void FaultTolerantGtmSession::GiveUp() {
  // Before declaring the transaction lost, reconcile with the server-side
  // truth: a commit may have applied even though every reply drowned.
  obs::SpanScope span(obs::ChildOf(ctx_));
  Result<gtm::TxnState> st = gtm_->StateOf(txn_);
  if (st.ok() && st.value() == gtm::TxnState::kCommitted) {
    Finish(true, AbortCause::kNone);
    pump_();
    return;
  }
  if (st.ok() && gtm::IsLive(st.value())) {
    (void)gtm_->RequestAbort(txn_);
  }
  Finish(false, AbortCause::kChannelLoss);
  pump_();
}

void FaultTolerantGtmSession::Finish(bool committed, AbortCause cause) {
  if (finished_) return;
  finished_ = true;
  phase_ = Phase::kDone;
  stub_.Cancel();
  stats_.finish = sim_->Now();
  stats_.committed = committed;
  stats_.cause = cause;
  stats_.retries = stub_.retries();
  done_(stats_);
}

// --- TwoPlSession ----------------------------------------------------------------

TwoPlSession::TwoPlSession(txn::TwoPhaseLockingEngine* engine,
                           sim::Simulator* simulator, TwoPlPlan plan,
                           PumpFn pump, DoneFn done)
    : engine_(engine),
      sim_(simulator),
      plan_(std::move(plan)),
      pump_(std::move(pump)),
      done_(std::move(done)) {}

void TwoPlSession::Start() {
  stats_.arrival = sim_->Now();
  stats_.disconnected = plan_.disconnect.disconnects;
  stats_.tag = plan_.tag;
  txn_ = engine_->Begin();
  stats_.txn = txn_;
  step_ = plan_.is_subtract ? Step::kAcquire : Step::kWrite;
  if (plan_.invoke_delay > 0) {
    sim_->After(plan_.invoke_delay, [this] {
      RunStep();
      pump_();
    });
    return;
  }
  RunStep();
  pump_();
}

void TwoPlSession::OnRunnable() {
  if (finished_ || !waiting_) return;
  waiting_ = false;
  ++wait_epoch_;  // Invalidate the armed timeout.
  RunStep();
}

void TwoPlSession::ArmWaitTimeout() {
  waiting_ = true;
  const uint64_t epoch = ++wait_epoch_;
  if (IsNoTimeout(plan_.lock_wait_timeout)) return;
  sim_->After(plan_.lock_wait_timeout, [this, epoch] {
    if (finished_ || !waiting_ || wait_epoch_ != epoch) return;
    (void)engine_->Abort(txn_);
    Finish(false, AbortCause::kLockWaitTimeout);
    pump_();
  });
}

void TwoPlSession::RunStep() {
  switch (step_) {
    case Step::kAcquire: {
      Result<storage::Value> v =
          engine_->ReadForUpdate(txn_, plan_.table, plan_.key, plan_.column);
      if (!v.ok()) {
        if (v.status().code() == StatusCode::kWaiting) {
          ArmWaitTimeout();
          return;
        }
        (void)engine_->Abort(txn_);
        Finish(false, v.status().code() == StatusCode::kDeadlock
                          ? AbortCause::kDeadlock
                          : AbortCause::kOther);
        return;
      }
      read_value_ = v.value();
      step_ = Step::kWrite;
      RunStep();
      return;
    }
    case Step::kWrite: {
      storage::Value target;
      if (plan_.is_subtract) {
        Result<storage::Value> next =
            storage::Value::Sub(read_value_, storage::Value::Int(1));
        if (!next.ok()) {
          (void)engine_->Abort(txn_);
          Finish(false, AbortCause::kOther);
          return;
        }
        target = std::move(next).value();
      } else {
        target = plan_.assign_value;
      }
      const Status s =
          engine_->Write(txn_, plan_.table, plan_.key, plan_.column, target);
      if (s.code() == StatusCode::kWaiting) {
        ArmWaitTimeout();
        return;
      }
      if (s.code() == StatusCode::kDeadlock) {
        (void)engine_->Abort(txn_);
        Finish(false, AbortCause::kDeadlock);
        return;
      }
      if (s.code() == StatusCode::kConstraintViolation) {
        (void)engine_->Abort(txn_);
        Finish(false, AbortCause::kConstraint);
        return;
      }
      if (!s.ok()) {
        (void)engine_->Abort(txn_);
        Finish(false, AbortCause::kOther);
        return;
      }
      step_ = Step::kTimeline;
      StartTimeline();
      return;
    }
    case Step::kTimeline:
    case Step::kCommit:
    case Step::kDone:
      return;
  }
}

void TwoPlSession::StartTimeline() {
  if (!plan_.disconnect.disconnects) {
    sim_->After(plan_.work_time + plan_.commit_delay, [this] { DoCommit(); });
    return;
  }
  const Duration pre = std::min(plan_.disconnect.offset, plan_.work_time);
  const Duration post = plan_.work_time - pre + plan_.commit_delay;
  sim_->After(pre, [this, post] {
    if (finished_) return;
    // The link drops; under 2PL the locks simply stay held. The system's
    // idle timeout may preventively abort us while we are away.
    const Duration away = plan_.disconnect.duration;
    if (plan_.idle_timeout < away) {
      sim_->After(plan_.idle_timeout, [this] {
        if (finished_) return;
        (void)engine_->Abort(txn_);
        Finish(false, AbortCause::kDisconnectTimeout);
        pump_();
      });
    } else {
      sim_->After(away + post, [this] { DoCommit(); });
    }
  });
}

void TwoPlSession::DoCommit() {
  if (finished_) return;
  step_ = Step::kCommit;
  const Status s = engine_->Commit(txn_);
  if (s.ok()) {
    Finish(true, AbortCause::kNone);
  } else {
    (void)engine_->Abort(txn_);
    Finish(false, AbortCause::kOther);
  }
  pump_();
}

void TwoPlSession::Finish(bool committed, AbortCause cause) {
  if (finished_) return;
  finished_ = true;
  step_ = Step::kDone;
  stats_.finish = sim_->Now();
  stats_.committed = committed;
  stats_.cause = cause;
  done_(stats_);
}

}  // namespace preserial::mobile
