#ifndef PRESERIAL_MOBILE_MULTI_SESSION_H_
#define PRESERIAL_MOBILE_MULTI_SESSION_H_

#include <string>
#include <vector>

#include "mobile/session.h"

namespace preserial::mobile {

// One step of a multi-operation long running transaction (the paper's
// Sec. II package tour: book a flight, think, book a hotel, ...).
struct TourStep {
  gtm::ObjectId object;
  semantics::MemberId member = 0;
  semantics::Operation op;
  // User think time after this step completes, before the next one.
  Duration think_time = 0;
  // Wireless hop before this step's invocation reaches the middleware.
  Duration invoke_delay = 0;
  // Owning shard of `object` (cluster runs); -1 otherwise. A step that
  // fails stamps its shard into SessionStats.shard.
  int shard = -1;
};

struct MultiTxnPlan {
  std::vector<TourStep> steps;
  Duration final_think = 0;  // Between the last step and the commit.
  Duration commit_delay = 0; // Wireless hop before the commit request.
  // Disconnection at an absolute offset from the session start; the client
  // sleeps wherever it happens to be (thinking or queued).
  DisconnectPlan disconnect;
  int tag = 0;
  int shard = -1;  // Default attribution when no single step failed.
};

// Simulated client running a multi-step GTM transaction. Steps execute in
// order; queued invocations park the session until OnGranted; a
// disconnection triggers Sleep wherever the session is and Awake resumes
// (or ends it with an awake-abort).
class MultiGtmSession : public GtmWaiter {
 public:
  using DoneFn = std::function<void(const SessionStats&)>;
  using PumpFn = std::function<void()>;

  // `client_trace`, when non-null, receives client-side span events as in
  // GtmSession: one root TraceContext minted at Start, every GTM call below
  // running under a child span so server-side events stitch into the trace.
  MultiGtmSession(gtm::GtmEndpoint* gtm, sim::Simulator* simulator, MultiTxnPlan plan,
                  PumpFn pump, DoneFn done,
                  gtm::TraceLog* client_trace = nullptr);

  void Start();
  void OnGranted() override;
  void OnSystemAbort(AbortCause cause) override;

  TxnId txn() const { return txn_; }
  bool finished() const { return finished_; }
  const obs::TraceContext& trace_context() const { return ctx_; }

 private:
  void RecordClient(gtm::TraceEventKind kind, std::string detail);
  void ScheduleStep();     // Pay the step's wireless hop, then RunStep.
  void RunStep();          // Invoke steps_[current_step_].
  void StepDone();         // Think, then advance.
  void AdvanceOrCommit();
  void DoSleep();
  void DoAwake();
  void DoCommit();
  void Finish(bool committed, AbortCause cause);

  gtm::GtmEndpoint* gtm_;
  sim::Simulator* sim_;
  MultiTxnPlan plan_;
  PumpFn pump_;
  DoneFn done_;
  TxnId txn_ = kInvalidTxnId;
  SessionStats stats_;
  size_t current_step_ = 0;
  bool finished_ = false;
  bool waiting_ = false;
  bool sleeping_ = false;
  // A timeline event (think-timer) fired while asleep; run it on awake.
  bool resume_pending_ = false;
  // What to resume: 0 = advance/commit, 1 = run current step.
  int resume_action_ = 0;
  // Requests carry per-transaction sequence numbers (idempotent endpoints).
  uint64_t next_seq_ = 1;
  bool commit_delay_paid_ = false;
  gtm::TraceLog* client_trace_;
  obs::TraceContext ctx_;  // Root span of this transaction's trace.
};

// The strict-2PL counterpart: each step locks its cell (read-for-update +
// write for subtractions, blind write for assignments) and all locks are
// held until the final commit — the paper's long-running-transaction
// pathology in its purest form.
struct TwoPlTourStep {
  std::string table;
  storage::Value key;
  size_t column = 0;
  bool is_subtract = true;
  storage::Value assign_value;
  Duration think_time = 0;
};

struct MultiTwoPlPlan {
  std::vector<TwoPlTourStep> steps;
  Duration final_think = 0;
  DisconnectPlan disconnect;  // Locks stay held while away.
  Duration lock_wait_timeout = kNoTimeout;
  Duration idle_timeout = kNoTimeout;  // System abort of disconnected holders.
  int tag = 0;
};

class MultiTwoPlSession : public TwoPlWaiter {
 public:
  using DoneFn = std::function<void(const SessionStats&)>;
  using PumpFn = std::function<void()>;

  MultiTwoPlSession(txn::TwoPhaseLockingEngine* engine,
                    sim::Simulator* simulator, MultiTwoPlPlan plan,
                    PumpFn pump, DoneFn done);

  void Start();
  void OnRunnable() override;

  TxnId txn() const { return txn_; }
  bool finished() const { return finished_; }

 private:
  enum class Phase { kAcquire, kWrite };

  void RunStep();
  void StepDone();
  void DoCommit();
  void Finish(bool committed, AbortCause cause);
  void ArmWaitTimeout();
  void ScheduleDisconnect();

  txn::TwoPhaseLockingEngine* engine_;
  sim::Simulator* sim_;
  MultiTwoPlPlan plan_;
  PumpFn pump_;
  DoneFn done_;
  TxnId txn_ = kInvalidTxnId;
  SessionStats stats_;
  size_t current_step_ = 0;
  Phase phase_ = Phase::kAcquire;
  storage::Value read_value_;
  bool finished_ = false;
  bool waiting_ = false;
  bool disconnected_now_ = false;
  // Progress that landed while the client was away, replayed on reconnect.
  bool resume_run_pending_ = false;
  bool resume_commit_pending_ = false;
  uint64_t wait_epoch_ = 0;
};

}  // namespace preserial::mobile

#endif  // PRESERIAL_MOBILE_MULTI_SESSION_H_
