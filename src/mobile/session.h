#ifndef PRESERIAL_MOBILE_SESSION_H_
#define PRESERIAL_MOBILE_SESSION_H_

#include <functional>
#include <string>

#include "common/clock.h"
#include "common/ids.h"
#include "gtm/gtm.h"
#include "gtm/trace.h"
#include "mobile/client.h"
#include "mobile/disconnect_model.h"
#include "obs/trace_context.h"
#include "sim/simulator.h"
#include "txn/txn_manager.h"

namespace preserial::mobile {

// Why a session ended.
enum class AbortCause {
  kNone,             // Committed.
  kDeadlock,         // Engine/GTM refused a wait that would cycle.
  kAwakeConflict,    // GTM Algorithm 9: incompatible work during sleep.
  kConstraint,       // SST / admission constraint failure.
  kLockWaitTimeout,  // Gave up waiting for a lock (2PL baseline).
  kDisconnectTimeout,// System aborted a disconnected holder (2PL baseline).
  kChannelLoss,      // Gave up on an unresponsive channel (retry budget).
  kOther,
};

const char* AbortCauseName(AbortCause c);

// Outcome record handed to the completion callback.
struct SessionStats {
  TxnId txn = kInvalidTxnId;
  TimePoint arrival = 0;
  TimePoint finish = 0;
  bool committed = false;
  bool disconnected = false;  // The plan included a disconnection.
  AbortCause cause = AbortCause::kNone;
  int tag = 0;  // Caller-defined class label (e.g. subtract vs assign).
  // Shard that raised the decisive outcome (cluster runs); -1 for
  // single-instance runs. For multi-step plans the failing step's shard
  // wins over the plan-level default.
  int shard = -1;
  // Fault-tolerant transport only: request attempts beyond the first, and
  // degrade-to-Sleep episodes after an exhausted retry budget.
  int64_t retries = 0;
  int64_t degraded_sleeps = 0;

  Duration Latency() const { return finish - arrival; }
};

// What one simulated transaction intends to do: a single semantic operation
// on one object member (the shape of the paper's Sec. VI-B workload),
// `work_time` seconds of user activity between grant and commit, and an
// optional mid-execution disconnection.
struct TxnPlan {
  gtm::ObjectId object;
  semantics::MemberId member = 0;
  semantics::Operation op;
  Duration work_time = 1.0;
  DisconnectPlan disconnect;
  // Wireless-hop delays (sampled from a NetworkModel by the workload
  // builder): paid before the invocation reaches the middleware and before
  // the commit request does.
  Duration invoke_delay = 0;
  Duration commit_delay = 0;
  int tag = 0;    // Copied into SessionStats.tag.
  int shard = -1;  // Owning shard of `object` (cluster runs); -1 otherwise.
};

// Interface the experiment runners use to resume parked GTM clients.
class GtmWaiter {
 public:
  virtual ~GtmWaiter() = default;
  // The queued invocation was admitted.
  virtual void OnGranted() = 0;
  // The system aborted this transaction (e.g. wait-timeout sweep).
  virtual void OnSystemAbort(AbortCause cause) = 0;
};

// Likewise for strict-2PL clients.
class TwoPlWaiter {
 public:
  virtual ~TwoPlWaiter() = default;
  // A blocked lock request of this session was granted; retry the step.
  virtual void OnRunnable() = 0;
};

// Simulated mobile client running one transaction against the GTM. Driven
// entirely by the discrete-event simulator; the owner must forward
// admission events (Gtm::TakeEvents) to OnGranted via the pump callback it
// supplies (see workload::ExperimentRunner).
class GtmSession : public GtmWaiter {
 public:
  using DoneFn = std::function<void(const SessionStats&)>;
  using PumpFn = std::function<void()>;

  // `client_trace`, when non-null, receives client-side span events
  // (kClientSend and friends) correlated with the server-side GTM events:
  // the session mints one root TraceContext at Start and runs every GTM
  // call under a child span of it.
  GtmSession(gtm::GtmEndpoint* gtm, sim::Simulator* simulator, TxnPlan plan,
             PumpFn pump, DoneFn done, gtm::TraceLog* client_trace = nullptr);

  // Schedules nothing; call at the arrival time.
  void Start();

  void OnGranted() override;
  void OnSystemAbort(AbortCause cause) override;

  TxnId txn() const { return txn_; }
  bool finished() const { return finished_; }
  const obs::TraceContext& trace_context() const { return ctx_; }

 private:
  void DoInvoke();
  void ProceedAfterGrant();
  void DoSleep();
  void DoAwake();
  void DoCommit();
  void Finish(bool committed, AbortCause cause);
  // Records a client-lane event under the current ambient span.
  void RecordClient(gtm::TraceEventKind kind, std::string detail);

  gtm::GtmEndpoint* gtm_;
  sim::Simulator* sim_;
  TxnPlan plan_;
  PumpFn pump_;
  DoneFn done_;
  gtm::TraceLog* client_trace_;
  obs::TraceContext ctx_;  // Root span of this transaction's trace.
  TxnId txn_ = kInvalidTxnId;
  SessionStats stats_;
  bool finished_ = false;
  bool granted_ = false;
};

// How a fault-tolerant session reacts when its retry budget runs out.
enum class FtMode {
  // Park the transaction in the paper's Sleep state (the middleware's
  // inactivity oracle Ξ would do the same to an unresponsive client) and
  // resume after `reconnect_delay` with Awake + a resend of the pending
  // request under its original sequence number.
  kDegradeToSleep,
  // The naive baseline: give up and abort the transaction.
  kAbortOnLoss,
};

// Plan of a fault-tolerant session: the base single-operation transaction
// plus the transport discipline. `base.disconnect` and the base delay
// fields are ignored — the channel supplies all delays and outages here.
struct FtPlan {
  TxnPlan base;
  RetryPolicy retry;
  FtMode mode = FtMode::kDegradeToSleep;
  Duration reconnect_delay = 5.0;  // Offline time per degrade episode.
  int max_degrades = 8;            // Degrade episodes before giving up.
};

// Simulated mobile client whose every Invoke/Commit/Awake crosses a
// LossyChannel through a RequestStub: requests are stamped with
// per-transaction sequence numbers (the GTM's idempotent *Once endpoints
// dedup redeliveries), silent requests retry with backoff, and an
// exhausted budget degrades into Sleep instead of aborting (Algorithms
// 7-10) — unless the plan says kAbortOnLoss.
//
// Begin and the grant notification (OnGranted, forwarded by the runner's
// pump) are modeled reliable: they stand for session establishment and the
// middleware's server-push channel, whose loss is equivalent to a lost
// reply followed by a retry. See DESIGN.md, "Failure model".
class FaultTolerantGtmSession : public GtmWaiter {
 public:
  using DoneFn = std::function<void(const SessionStats&)>;
  using PumpFn = std::function<void()>;

  // `client_trace` as in GtmSession; additionally every logical request
  // gets its own child span, captured by value into the request closure so
  // the server-side execution (and any redelivered duplicate) records
  // under the span of the request that carried it.
  FaultTolerantGtmSession(gtm::GtmEndpoint* gtm, sim::Simulator* simulator,
                          const LossyChannel* channel, Rng* rng, FtPlan plan,
                          PumpFn pump, DoneFn done,
                          gtm::TraceLog* client_trace = nullptr);

  void Start();
  void OnGranted() override;
  void OnSystemAbort(AbortCause cause) override;

  TxnId txn() const { return txn_; }
  bool finished() const { return finished_; }
  const SessionStats& stats() const { return stats_; }
  const obs::TraceContext& trace_context() const { return ctx_; }

 private:
  enum class Phase { kInvoke, kWorking, kCommit, kDone };

  void SendInvoke();
  void OnInvokeReply(const Status& s);
  void ProceedAfterGrant();
  void SendCommit();
  void OnCommitReply(const Status& s);
  // Retry budget exhausted: degrade to Sleep (or abort, kAbortOnLoss).
  void OnExhausted();
  void Reconnect();
  // Re-sends the phase's pending request under its original seq.
  void ResendPending();
  void GiveUp();
  void Finish(bool committed, AbortCause cause);
  void RecordClient(gtm::TraceEventKind kind, std::string detail);

  gtm::GtmEndpoint* gtm_;
  sim::Simulator* sim_;
  FtPlan plan_;
  PumpFn pump_;
  DoneFn done_;
  gtm::TraceLog* client_trace_;
  obs::TraceContext ctx_;  // Root span of this transaction's trace.
  RequestStub stub_;
  TxnId txn_ = kInvalidTxnId;
  SessionStats stats_;
  Phase phase_ = Phase::kInvoke;
  bool started_ = false;  // Guards stats on Begin retries (dead primary).
  bool finished_ = false;
  bool granted_ = false;
  uint64_t next_seq_ = 1;
  uint64_t invoke_seq_ = 0;  // Assigned at first send, reused on resends.
  uint64_t commit_seq_ = 0;
  int degrades_ = 0;
};

// The same client shape against the strict-2PL baseline engine: lock the
// cell up front (read-for-update + write for subtractions, blind write for
// assignments), hold the lock through the user's work and any
// disconnection, then commit. Two system policies make the baseline honest:
// a lock-wait timeout (waiters behind a disconnected holder eventually give
// up) and an idle timeout (the system preventively aborts disconnected
// holders) — exactly the 2PL pathologies the paper's Sec. II motivates
// against.
struct TwoPlPlan {
  std::string table;
  storage::Value key;
  size_t column = 0;
  bool is_subtract = true;           // Subtract 1, else assign.
  storage::Value assign_value;       // For assignments.
  Duration work_time = 1.0;
  DisconnectPlan disconnect;
  Duration lock_wait_timeout = kNoTimeout;
  Duration idle_timeout = kNoTimeout;
  Duration invoke_delay = 0;   // Wireless hop before the first operation.
  Duration commit_delay = 0;   // Wireless hop before the commit request.
  int tag = 0;                 // Copied into SessionStats.tag.
};

class TwoPlSession : public TwoPlWaiter {
 public:
  using DoneFn = std::function<void(const SessionStats&)>;
  using PumpFn = std::function<void()>;

  TwoPlSession(txn::TwoPhaseLockingEngine* engine, sim::Simulator* simulator,
               TwoPlPlan plan, PumpFn pump, DoneFn done);

  void Start();
  void OnRunnable() override;

  TxnId txn() const { return txn_; }
  bool finished() const { return finished_; }

 private:
  enum class Step { kAcquire, kWrite, kTimeline, kCommit, kDone };

  void RunStep();
  void StartTimeline();
  void DoCommit();
  void Finish(bool committed, AbortCause cause);
  void ArmWaitTimeout();

  txn::TwoPhaseLockingEngine* engine_;
  sim::Simulator* sim_;
  TwoPlPlan plan_;
  PumpFn pump_;
  DoneFn done_;
  TxnId txn_ = kInvalidTxnId;
  SessionStats stats_;
  Step step_ = Step::kAcquire;
  storage::Value read_value_;
  bool finished_ = false;
  // Guards stale wait-timeout events: each new wait bumps the epoch.
  uint64_t wait_epoch_ = 0;
  bool waiting_ = false;
};

}  // namespace preserial::mobile

#endif  // PRESERIAL_MOBILE_SESSION_H_
