#include "mobile/disconnect_model.h"

#include <utility>

namespace preserial::mobile {

DisconnectModel::DisconnectModel(
    double probability, std::unique_ptr<sim::Distribution> duration_dist)
    : probability_(probability), duration_dist_(std::move(duration_dist)) {}

DisconnectModel DisconnectModel::WithExponentialDuration(
    double probability, double mean_duration) {
  return DisconnectModel(
      probability, std::make_unique<sim::ExponentialDist>(mean_duration));
}

DisconnectPlan DisconnectModel::Sample(Rng& rng, Duration work_span) const {
  DisconnectPlan plan;
  plan.disconnects = rng.NextBool(probability_);
  if (!plan.disconnects) return plan;
  plan.offset = rng.NextDouble() * work_span;
  plan.duration = duration_dist_->Sample(rng);
  return plan;
}

}  // namespace preserial::mobile
