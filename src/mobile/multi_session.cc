#include "mobile/multi_session.h"

#include <algorithm>

#include "common/logging.h"

namespace preserial::mobile {

// --- MultiGtmSession ------------------------------------------------------------

MultiGtmSession::MultiGtmSession(gtm::GtmEndpoint* gtm, sim::Simulator* simulator,
                                 MultiTxnPlan plan, PumpFn pump, DoneFn done,
                                 gtm::TraceLog* client_trace)
    : gtm_(gtm),
      sim_(simulator),
      plan_(std::move(plan)),
      pump_(std::move(pump)),
      done_(std::move(done)),
      client_trace_(client_trace) {}

void MultiGtmSession::RecordClient(gtm::TraceEventKind kind,
                                   std::string detail) {
  if (client_trace_ == nullptr) return;
  const gtm::ObjectId object = current_step_ < plan_.steps.size()
                                   ? plan_.steps[current_step_].object
                                   : gtm::ObjectId{};
  client_trace_->Record(sim_->Now(), kind, txn_, object, std::move(detail));
}

void MultiGtmSession::Start() {
  stats_.arrival = sim_->Now();
  stats_.disconnected = plan_.disconnect.disconnects;
  stats_.tag = plan_.tag;
  stats_.shard = plan_.shard;
  // One trace per transaction, rooted at the client: every GTM call below
  // runs under a child span, so the server-side events it records stitch
  // into this trace.
  ctx_ = obs::NewRootContext();
  {
    obs::SpanScope span(obs::ChildOf(ctx_));
    txn_ = gtm_->Begin();
  }
  stats_.txn = txn_;
  if (plan_.disconnect.disconnects) {
    sim_->After(plan_.disconnect.offset, [this] { DoSleep(); });
  }
  if (plan_.steps.empty()) {
    DoCommit();
  } else {
    ScheduleStep();
  }
  pump_();
}

void MultiGtmSession::ScheduleStep() {
  const Duration hop = plan_.steps[current_step_].invoke_delay;
  if (hop <= 0) {
    RunStep();
    return;
  }
  sim_->After(hop, [this] {
    RunStep();
    pump_();
  });
}

void MultiGtmSession::RunStep() {
  if (finished_) return;
  if (sleeping_) {
    resume_pending_ = true;
    resume_action_ = 1;
    return;
  }
  const TourStep& step = plan_.steps[current_step_];
  obs::SpanScope span(obs::ChildOf(ctx_));
  RecordClient(gtm::TraceEventKind::kClientSend, "invoke");
  const Status s =
      gtm_->InvokeOnce(txn_, next_seq_++, step.object, step.member, step.op);
  switch (s.code()) {
    case StatusCode::kOk:
      StepDone();
      return;
    case StatusCode::kWaiting:
      waiting_ = true;
      return;
    case StatusCode::kDeadlock:
      stats_.shard = step.shard;
      (void)gtm_->RequestAbort(txn_);
      Finish(false, AbortCause::kDeadlock);
      return;
    case StatusCode::kConstraintViolation:
      stats_.shard = step.shard;
      (void)gtm_->RequestAbort(txn_);
      Finish(false, AbortCause::kConstraint);
      return;
    default:
      stats_.shard = step.shard;
      (void)gtm_->RequestAbort(txn_);
      Finish(false, AbortCause::kOther);
      return;
  }
}

void MultiGtmSession::OnGranted() {
  if (finished_ || sleeping_ || !waiting_) return;
  StepDone();
}

void MultiGtmSession::OnSystemAbort(AbortCause cause) {
  if (finished_) return;
  Finish(false, cause);
}

void MultiGtmSession::StepDone() {
  waiting_ = false;
  const Duration think = plan_.steps[current_step_].think_time;
  sim_->After(think, [this] { AdvanceOrCommit(); });
}

void MultiGtmSession::AdvanceOrCommit() {
  if (finished_) return;
  if (sleeping_) {
    resume_pending_ = true;
    resume_action_ = 0;
    return;
  }
  ++current_step_;
  if (current_step_ < plan_.steps.size()) {
    ScheduleStep();
    pump_();
    return;
  }
  sim_->After(plan_.final_think, [this] { DoCommit(); });
}

void MultiGtmSession::DoSleep() {
  if (finished_) return;
  obs::SpanScope span(obs::ChildOf(ctx_));
  RecordClient(gtm::TraceEventKind::kClientSend, "sleep");
  const Status s = gtm_->SleepOnce(txn_, next_seq_++);
  if (!s.ok()) {
    // Sleeping disabled (ablation) aborts on disconnection.
    Finish(false, AbortCause::kAwakeConflict);
    pump_();
    return;
  }
  sleeping_ = true;
  sim_->After(plan_.disconnect.duration, [this] { DoAwake(); });
  pump_();
}

void MultiGtmSession::DoAwake() {
  if (finished_) return;
  obs::SpanScope span(obs::ChildOf(ctx_));
  RecordClient(gtm::TraceEventKind::kClientSend, "awake");
  const Status s = gtm_->AwakeOnce(txn_, next_seq_++);
  if (!s.ok()) {
    Finish(false, s.code() == StatusCode::kAborted
                      ? AbortCause::kAwakeConflict
                      : AbortCause::kOther);
    pump_();
    return;
  }
  sleeping_ = false;
  if (waiting_) {
    // Algorithm 9 case 1 admitted our queued invocation at awake.
    StepDone();
  } else if (resume_pending_) {
    resume_pending_ = false;
    switch (resume_action_) {
      case 0:
        AdvanceOrCommit();
        break;
      case 1:
        RunStep();
        break;
      default:
        DoCommit();
        break;
    }
  }
  pump_();
}

void MultiGtmSession::DoCommit() {
  if (finished_) return;
  if (sleeping_) {
    resume_pending_ = true;
    resume_action_ = 2;
    return;
  }
  if (!commit_delay_paid_ && plan_.commit_delay > 0) {
    commit_delay_paid_ = true;
    sim_->After(plan_.commit_delay, [this] { DoCommit(); });
    return;
  }
  obs::SpanScope span(obs::ChildOf(ctx_));
  RecordClient(gtm::TraceEventKind::kClientSend, "commit");
  const Status s = gtm_->CommitOnce(txn_, next_seq_++);
  if (s.ok()) {
    Finish(true, AbortCause::kNone);
  } else {
    Finish(false, AbortCause::kConstraint);
  }
  pump_();
}

void MultiGtmSession::Finish(bool committed, AbortCause cause) {
  if (finished_) return;
  finished_ = true;
  stats_.finish = sim_->Now();
  stats_.committed = committed;
  stats_.cause = cause;
  done_(stats_);
}

// --- MultiTwoPlSession ----------------------------------------------------------

MultiTwoPlSession::MultiTwoPlSession(txn::TwoPhaseLockingEngine* engine,
                                     sim::Simulator* simulator,
                                     MultiTwoPlPlan plan, PumpFn pump,
                                     DoneFn done)
    : engine_(engine),
      sim_(simulator),
      plan_(std::move(plan)),
      pump_(std::move(pump)),
      done_(std::move(done)) {}

void MultiTwoPlSession::Start() {
  stats_.arrival = sim_->Now();
  stats_.disconnected = plan_.disconnect.disconnects;
  stats_.tag = plan_.tag;
  txn_ = engine_->Begin();
  stats_.txn = txn_;
  if (plan_.disconnect.disconnects) ScheduleDisconnect();
  if (plan_.steps.empty()) {
    DoCommit();
  } else {
    RunStep();
  }
  pump_();
}

void MultiTwoPlSession::ScheduleDisconnect() {
  sim_->After(plan_.disconnect.offset, [this] {
    if (finished_) return;
    disconnected_now_ = true;
    // Locks stay held. The system may preventively abort us while away.
    if (plan_.idle_timeout < plan_.disconnect.duration) {
      sim_->After(plan_.idle_timeout, [this] {
        if (finished_) return;
        (void)engine_->Abort(txn_);
        Finish(false, AbortCause::kDisconnectTimeout);
        pump_();
      });
      return;
    }
    sim_->After(plan_.disconnect.duration, [this] {
      if (finished_) return;
      disconnected_now_ = false;
      // Pick up whatever landed while we were away; if nothing did (still
      // parked on a lock, or mid-think with the timer yet to fire), the
      // normal paths resume us.
      if (resume_commit_pending_) {
        resume_commit_pending_ = false;
        DoCommit();
      } else if (resume_run_pending_) {
        resume_run_pending_ = false;
        RunStep();
        pump_();
      }
    });
  });
}

void MultiTwoPlSession::ArmWaitTimeout() {
  waiting_ = true;
  const uint64_t epoch = ++wait_epoch_;
  if (IsNoTimeout(plan_.lock_wait_timeout)) return;
  sim_->After(plan_.lock_wait_timeout, [this, epoch] {
    if (finished_ || !waiting_ || wait_epoch_ != epoch) return;
    (void)engine_->Abort(txn_);
    Finish(false, AbortCause::kLockWaitTimeout);
    pump_();
  });
}

void MultiTwoPlSession::OnRunnable() {
  if (finished_ || !waiting_) return;
  waiting_ = false;
  ++wait_epoch_;
  if (disconnected_now_) {
    // Granted while the client is away: the lock is held, but the client
    // retries the step only after reconnection.
    resume_run_pending_ = true;
    return;
  }
  RunStep();
}

void MultiTwoPlSession::RunStep() {
  if (finished_ || disconnected_now_) return;
  const TwoPlTourStep& step = plan_.steps[current_step_];
  if (phase_ == Phase::kAcquire) {
    if (!step.is_subtract) {
      phase_ = Phase::kWrite;
    } else {
      Result<storage::Value> v =
          engine_->ReadForUpdate(txn_, step.table, step.key, step.column);
      if (!v.ok()) {
        if (v.status().code() == StatusCode::kWaiting) {
          ArmWaitTimeout();
          return;
        }
        (void)engine_->Abort(txn_);
        Finish(false, v.status().code() == StatusCode::kDeadlock
                          ? AbortCause::kDeadlock
                          : AbortCause::kOther);
        return;
      }
      read_value_ = v.value();
      phase_ = Phase::kWrite;
    }
  }
  // Write phase.
  storage::Value target;
  if (step.is_subtract) {
    Result<storage::Value> next =
        storage::Value::Sub(read_value_, storage::Value::Int(1));
    if (!next.ok()) {
      (void)engine_->Abort(txn_);
      Finish(false, AbortCause::kOther);
      return;
    }
    target = std::move(next).value();
  } else {
    target = step.assign_value;
  }
  const Status s =
      engine_->Write(txn_, step.table, step.key, step.column, target);
  if (s.code() == StatusCode::kWaiting) {
    ArmWaitTimeout();
    return;
  }
  if (s.code() == StatusCode::kDeadlock) {
    (void)engine_->Abort(txn_);
    Finish(false, AbortCause::kDeadlock);
    return;
  }
  if (s.code() == StatusCode::kConstraintViolation) {
    (void)engine_->Abort(txn_);
    Finish(false, AbortCause::kConstraint);
    return;
  }
  if (!s.ok()) {
    (void)engine_->Abort(txn_);
    Finish(false, AbortCause::kOther);
    return;
  }
  StepDone();
}

void MultiTwoPlSession::StepDone() {
  const Duration think = plan_.steps[current_step_].think_time;
  sim_->After(think, [this] {
    if (finished_) return;
    ++current_step_;
    phase_ = Phase::kAcquire;
    if (current_step_ < plan_.steps.size()) {
      if (disconnected_now_) {
        resume_run_pending_ = true;  // Reconnect resumes the next step.
      } else {
        RunStep();
        pump_();
      }
      return;
    }
    sim_->After(plan_.final_think, [this] { DoCommit(); });
  });
}

void MultiTwoPlSession::DoCommit() {
  if (finished_) return;
  if (disconnected_now_) {
    resume_commit_pending_ = true;  // Commit once reconnected.
    return;
  }
  const Status s = engine_->Commit(txn_);
  if (s.ok()) {
    Finish(true, AbortCause::kNone);
  } else {
    (void)engine_->Abort(txn_);
    Finish(false, AbortCause::kOther);
  }
  pump_();
}

void MultiTwoPlSession::Finish(bool committed, AbortCause cause) {
  if (finished_) return;
  finished_ = true;
  stats_.finish = sim_->Now();
  stats_.committed = committed;
  stats_.cause = cause;
  done_(stats_);
}

}  // namespace preserial::mobile
