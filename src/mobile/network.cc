#include "mobile/network.h"

#include <utility>

namespace preserial::mobile {

NetworkModel::NetworkModel() = default;

NetworkModel::NetworkModel(Duration fixed)
    : latency_(std::make_unique<sim::ConstantDist>(fixed)) {}

NetworkModel::NetworkModel(std::unique_ptr<sim::Distribution> latency)
    : latency_(std::move(latency)) {}

Duration NetworkModel::SampleDelay(Rng& rng) const {
  return latency_ == nullptr ? 0.0 : latency_->Sample(rng);
}

double NetworkModel::mean_delay() const {
  return latency_ == nullptr ? 0.0 : latency_->Mean();
}

}  // namespace preserial::mobile
