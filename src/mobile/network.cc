#include "mobile/network.h"

#include <utility>

namespace preserial::mobile {

NetworkModel::NetworkModel() = default;

NetworkModel::NetworkModel(Duration fixed)
    : latency_(std::make_unique<sim::ConstantDist>(fixed)) {}

NetworkModel::NetworkModel(std::unique_ptr<sim::Distribution> latency)
    : latency_(std::move(latency)) {}

Duration NetworkModel::SampleDelay(Rng& rng) const {
  return latency_ == nullptr ? 0.0 : latency_->Sample(rng);
}

double NetworkModel::mean_delay() const {
  return latency_ == nullptr ? 0.0 : latency_->Mean();
}

std::vector<Duration> LossyChannel::SampleDeliveries(Rng& rng) const {
  ++counters_.messages;
  // The original plus any injected duplicates; each copy then faces loss
  // and delay independently (a duplicate can survive its original).
  int copies = 1;
  while (copies < 4 && rng.NextBool(faults_.duplicate)) {
    ++copies;
    ++counters_.duplicated;
  }
  std::vector<Duration> deliveries;
  for (int c = 0; c < copies; ++c) {
    if (rng.NextBool(faults_.loss)) {
      ++counters_.dropped;
      continue;
    }
    Duration delay = latency_.SampleDelay(rng);
    if (rng.NextBool(faults_.reorder)) {
      delay += rng.NextExponential(faults_.reorder_delay_mean);
      ++counters_.reordered;
    }
    deliveries.push_back(delay);
    ++counters_.delivered;
  }
  return deliveries;
}

}  // namespace preserial::mobile
