#include "txn/undo_log.h"

#include <utility>

namespace preserial::txn {

void UndoLog::RecordInsert(std::string table, storage::Value key) {
  entries_.push_back(Entry{Kind::kUndoInsert, std::move(table), std::move(key),
                           storage::Row()});
}

void UndoLog::RecordUpdate(std::string table, storage::Value key,
                           storage::Row before) {
  entries_.push_back(Entry{Kind::kUndoUpdate, std::move(table), std::move(key),
                           std::move(before)});
}

void UndoLog::RecordDelete(std::string table, storage::Row before,
                           storage::Value key) {
  entries_.push_back(Entry{Kind::kUndoDelete, std::move(table), std::move(key),
                           std::move(before)});
}

Status UndoLog::Apply(storage::Catalog* catalog) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    PRESERIAL_ASSIGN_OR_RETURN(storage::Table * table,
                               catalog->GetTable(it->table));
    switch (it->kind) {
      case Kind::kUndoInsert:
        PRESERIAL_RETURN_IF_ERROR(table->DeleteByKey(it->key));
        break;
      case Kind::kUndoUpdate:
        PRESERIAL_RETURN_IF_ERROR(table->UpdateByKey(it->key, it->before));
        break;
      case Kind::kUndoDelete: {
        Result<storage::RowId> rid = table->Insert(it->before);
        if (!rid.ok()) return rid.status();
        break;
      }
    }
  }
  return Status::Ok();
}

}  // namespace preserial::txn
