#include "txn/txn_manager.h"

#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace preserial::txn {

using storage::Row;
using storage::Table;
using storage::Value;

TwoPhaseLockingEngine::TwoPhaseLockingEngine(storage::Database* db,
                                             const Clock* clock,
                                             Options options)
    : db_(db), clock_(clock), options_(options) {}

lock::ResourceId TwoPhaseLockingEngine::RowResource(const std::string& table,
                                                    const Value& key) {
  std::string r = table;
  r.push_back('\x1f');
  key.EncodeTo(&r);
  return r;
}

TxnId TwoPhaseLockingEngine::Begin() {
  const TxnId id = db_->NextTxnId();
  Transaction t;
  t.id = id;
  t.phase = TxnPhase::kActive;
  t.begin_time = clock_ != nullptr ? clock_->Now() : 0;
  txns_.emplace(id, std::move(t));
  ++counters_.begun;
  // Begin records make the log self-describing; recovery ignores them.
  PRESERIAL_CHECK(db_->wal()->LogBegin(id).ok());
  return id;
}

Transaction* TwoPhaseLockingEngine::GetMutable(TxnId txn) {
  auto it = txns_.find(txn);
  return it == txns_.end() ? nullptr : &it->second;
}

const Transaction* TwoPhaseLockingEngine::Get(TxnId txn) const {
  auto it = txns_.find(txn);
  return it == txns_.end() ? nullptr : &it->second;
}

TxnPhase TwoPhaseLockingEngine::PhaseOf(TxnId txn) const {
  const Transaction* t = Get(txn);
  PRESERIAL_CHECK(t != nullptr) << "unknown txn " << txn;
  return t->phase;
}

void TwoPhaseLockingEngine::AbsorbGrants(
    std::vector<lock::LockGrant> grants) {
  for (const lock::LockGrant& g : grants) {
    Transaction* t = GetMutable(g.txn);
    if (t == nullptr) continue;
    if (t->phase == TxnPhase::kWaiting) {
      t->phase = TxnPhase::kActive;
      runnable_.push_back(g.txn);
    }
  }
}

Status TwoPhaseLockingEngine::AcquireRow(Transaction* t,
                                         const std::string& table,
                                         const Value& key,
                                         lock::LockMode mode) {
  const lock::ResourceId res = RowResource(table, key);
  switch (lock_manager_.Acquire(t->id, res, mode)) {
    case lock::LockResult::kGranted:
      return Status::Ok();
    case lock::LockResult::kWaiting:
      t->phase = TxnPhase::kWaiting;
      ++t->lock_waits;
      ++counters_.lock_waits;
      return Status::Waiting(StrFormat("txn %llu waits for %s on %s",
                                       static_cast<unsigned long long>(t->id),
                                       lock::LockModeName(mode),
                                       table.c_str()));
    case lock::LockResult::kDeadlock:
      ++counters_.deadlocks;
      AbsorbGrants(lock_manager_.TakePendingGrants());
      return Status::Deadlock(StrFormat(
          "txn %llu would deadlock acquiring %s on %s",
          static_cast<unsigned long long>(t->id), lock::LockModeName(mode),
          table.c_str()));
  }
  return Status::Internal("unreachable lock result");
}

Result<Value> TwoPhaseLockingEngine::Read(TxnId txn, const std::string& table,
                                          const Value& key, size_t column) {
  Transaction* t = GetMutable(txn);
  if (t == nullptr || t->phase != TxnPhase::kActive) {
    return Status::FailedPrecondition("Read on non-active transaction");
  }
  PRESERIAL_RETURN_IF_ERROR(AcquireRow(t, table, key, lock::LockMode::kShared));
  PRESERIAL_ASSIGN_OR_RETURN(Table * tab, db_->GetTable(table));
  ++t->operations;
  return tab->GetColumnByKey(key, column);
}

Result<Value> TwoPhaseLockingEngine::ReadForUpdate(TxnId txn,
                                                   const std::string& table,
                                                   const Value& key,
                                                   size_t column) {
  Transaction* t = GetMutable(txn);
  if (t == nullptr || t->phase != TxnPhase::kActive) {
    return Status::FailedPrecondition("ReadForUpdate on non-active txn");
  }
  const lock::LockMode mode = options_.use_update_locks
                                  ? lock::LockMode::kUpdate
                                  : lock::LockMode::kShared;
  PRESERIAL_RETURN_IF_ERROR(AcquireRow(t, table, key, mode));
  PRESERIAL_ASSIGN_OR_RETURN(Table * tab, db_->GetTable(table));
  ++t->operations;
  return tab->GetColumnByKey(key, column);
}

Status TwoPhaseLockingEngine::Write(TxnId txn, const std::string& table,
                                    const Value& key, size_t column,
                                    Value v) {
  Transaction* t = GetMutable(txn);
  if (t == nullptr || t->phase != TxnPhase::kActive) {
    return Status::FailedPrecondition("Write on non-active transaction");
  }
  PRESERIAL_ASSIGN_OR_RETURN(Table * tab, db_->GetTable(table));
  if (column == tab->schema().primary_key()) {
    return Status::InvalidArgument("cannot write the primary-key column");
  }
  PRESERIAL_RETURN_IF_ERROR(
      AcquireRow(t, table, key, lock::LockMode::kExclusive));
  PRESERIAL_ASSIGN_OR_RETURN(Row before, tab->GetByKey(key));
  Row after = before;
  after.Set(column, std::move(v));
  // UpdateByKey validates schema and CHECK constraints.
  PRESERIAL_RETURN_IF_ERROR(tab->UpdateByKey(key, after));
  t->undo.RecordUpdate(table, key, std::move(before));
  PRESERIAL_RETURN_IF_ERROR(
      db_->wal()->LogUpdate(txn, table, key, std::move(after)));
  ++t->operations;
  return Status::Ok();
}

Status TwoPhaseLockingEngine::Insert(TxnId txn, const std::string& table,
                                     Row row) {
  Transaction* t = GetMutable(txn);
  if (t == nullptr || t->phase != TxnPhase::kActive) {
    return Status::FailedPrecondition("Insert on non-active transaction");
  }
  PRESERIAL_ASSIGN_OR_RETURN(Table * tab, db_->GetTable(table));
  PRESERIAL_RETURN_IF_ERROR(tab->schema().ValidateRow(row.values()));
  const Value key = row.at(tab->schema().primary_key());
  PRESERIAL_RETURN_IF_ERROR(
      AcquireRow(t, table, key, lock::LockMode::kExclusive));
  Result<storage::RowId> rid = tab->Insert(row);
  if (!rid.ok()) return rid.status();
  t->undo.RecordInsert(table, key);
  PRESERIAL_RETURN_IF_ERROR(db_->wal()->LogInsert(txn, table, std::move(row)));
  ++t->operations;
  return Status::Ok();
}

Status TwoPhaseLockingEngine::Delete(TxnId txn, const std::string& table,
                                     const Value& key) {
  Transaction* t = GetMutable(txn);
  if (t == nullptr || t->phase != TxnPhase::kActive) {
    return Status::FailedPrecondition("Delete on non-active transaction");
  }
  PRESERIAL_RETURN_IF_ERROR(
      AcquireRow(t, table, key, lock::LockMode::kExclusive));
  PRESERIAL_ASSIGN_OR_RETURN(Table * tab, db_->GetTable(table));
  PRESERIAL_ASSIGN_OR_RETURN(Row before, tab->GetByKey(key));
  PRESERIAL_RETURN_IF_ERROR(tab->DeleteByKey(key));
  t->undo.RecordDelete(table, std::move(before), key);
  PRESERIAL_RETURN_IF_ERROR(db_->wal()->LogDelete(txn, table, key));
  ++t->operations;
  return Status::Ok();
}

Status TwoPhaseLockingEngine::Commit(TxnId txn) {
  Transaction* t = GetMutable(txn);
  if (t == nullptr || t->phase != TxnPhase::kActive) {
    return Status::FailedPrecondition("Commit on non-active transaction");
  }
  PRESERIAL_RETURN_IF_ERROR(db_->wal()->LogCommit(txn));
  t->phase = TxnPhase::kCommitted;
  t->undo.Clear();
  ++counters_.committed;
  AbsorbGrants(lock_manager_.ReleaseAll(txn));
  return Status::Ok();
}

Status TwoPhaseLockingEngine::Abort(TxnId txn) {
  Transaction* t = GetMutable(txn);
  if (t == nullptr ||
      (t->phase != TxnPhase::kActive && t->phase != TxnPhase::kWaiting)) {
    return Status::FailedPrecondition("Abort on non-live transaction");
  }
  PRESERIAL_RETURN_IF_ERROR(t->undo.Apply(db_->catalog()));
  t->undo.Clear();
  PRESERIAL_RETURN_IF_ERROR(db_->wal()->LogAbort(txn));
  t->phase = TxnPhase::kAborted;
  ++counters_.aborted;
  AbsorbGrants(lock_manager_.ReleaseAll(txn));
  return Status::Ok();
}

std::vector<TxnId> TwoPhaseLockingEngine::TakeRunnable() {
  std::vector<TxnId> out;
  out.swap(runnable_);
  return out;
}

}  // namespace preserial::txn
