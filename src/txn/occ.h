#ifndef PRESERIAL_TXN_OCC_H_
#define PRESERIAL_TXN_OCC_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "storage/database.h"

namespace preserial::txn {

// The paper's second Sec. II baseline: the "freeze" strategy. No locks are
// held while the user works; every write is buffered as an *operation*
// (assignment or delta) and the whole transaction executes at commit,
// guarded by the table CHECK constraints.
//
// Two validation flavours:
//   - kConstraintsOnly  (paper's description): apply buffered operations at
//     commit if constraints hold; reads are never validated, so the values
//     the user saw may have changed underneath ("the whole journey has to
//     be replanned").
//   - kValidateReads    classic backward OCC: additionally abort when any
//     value read differs from its current committed value.
//
// Single-threaded like the rest of the stack; commits are atomic because
// they run to completion within one event.
class OccEngine {
 public:
  enum class Validation {
    kConstraintsOnly,
    kValidateReads,
  };

  // A buffered write operation.
  struct PendingOp {
    enum class Kind { kAssign, kAdd };
    std::string table;
    storage::Value key;
    size_t column = 0;
    Kind kind = Kind::kAssign;
    storage::Value operand;
  };

  explicit OccEngine(storage::Database* db,
                     Validation validation = Validation::kConstraintsOnly);

  OccEngine(const OccEngine&) = delete;
  OccEngine& operator=(const OccEngine&) = delete;

  TxnId Begin();

  // Reads the current committed value (recorded in the read set).
  Result<storage::Value> Read(TxnId txn, const std::string& table,
                              const storage::Value& key, size_t column);

  // Buffers `cell = v`.
  Status BufferAssign(TxnId txn, const std::string& table,
                      const storage::Value& key, size_t column,
                      storage::Value v);

  // Buffers `cell = cell + delta` (evaluated at commit time).
  Status BufferAdd(TxnId txn, const std::string& table,
                   const storage::Value& key, size_t column,
                   storage::Value delta);

  // Validates and applies; kAborted with a reason on validation failure or
  // constraint violation (the transaction is rolled back in either case).
  Status Commit(TxnId txn);

  Status Abort(TxnId txn);

  struct Counters {
    int64_t begun = 0;
    int64_t committed = 0;
    int64_t validation_aborts = 0;
    int64_t constraint_aborts = 0;
    int64_t user_aborts = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  struct ReadEntry {
    std::string table;
    storage::Value key;
    size_t column = 0;
    storage::Value seen;
  };
  struct TxnState {
    std::vector<ReadEntry> reads;
    std::vector<PendingOp> writes;
    bool live = true;
  };

  TxnState* GetLive(TxnId txn);

  storage::Database* db_;
  Validation validation_;
  std::unordered_map<TxnId, TxnState> txns_;
  Counters counters_;
};

}  // namespace preserial::txn

#endif  // PRESERIAL_TXN_OCC_H_
