#include "txn/transaction.h"

namespace preserial::txn {

const char* TxnPhaseName(TxnPhase phase) {
  switch (phase) {
    case TxnPhase::kActive:
      return "ACTIVE";
    case TxnPhase::kWaiting:
      return "WAITING";
    case TxnPhase::kCommitted:
      return "COMMITTED";
    case TxnPhase::kAborted:
      return "ABORTED";
  }
  return "?";
}

}  // namespace preserial::txn
