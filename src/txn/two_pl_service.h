#ifndef PRESERIAL_TXN_TWO_PL_SERVICE_H_
#define PRESERIAL_TXN_TWO_PL_SERVICE_H_

#include <condition_variable>
#include <mutex>
#include <string>
#include <unordered_set>

#include "common/clock.h"
#include "txn/txn_manager.h"

namespace preserial::txn {

// Thread-safe blocking facade over the strict-2PL engine, the baseline
// counterpart of gtm::GtmService: each client runs on its own thread and
// blocked operations park on a condition variable until their lock request
// is granted.
//
// Deadlock refusals abort the transaction and surface kDeadlock; lock-wait
// timeouts abort and surface kTimedOut (the caller restarts from Begin).
class TwoPlService {
 public:
  explicit TwoPlService(storage::Database* db,
                        TwoPhaseLockingOptions options = {});

  TwoPlService(const TwoPlService&) = delete;
  TwoPlService& operator=(const TwoPlService&) = delete;

  TxnId Begin();

  Result<storage::Value> Read(TxnId txn, const std::string& table,
                              const storage::Value& key, size_t column,
                              Duration timeout = kNoTimeout);
  Result<storage::Value> ReadForUpdate(TxnId txn, const std::string& table,
                                       const storage::Value& key,
                                       size_t column, Duration timeout = kNoTimeout);
  Status Write(TxnId txn, const std::string& table,
               const storage::Value& key, size_t column, storage::Value v,
               Duration timeout = kNoTimeout);
  Status Insert(TxnId txn, const std::string& table, storage::Row row,
                Duration timeout = kNoTimeout);
  Status Delete(TxnId txn, const std::string& table,
                const storage::Value& key, Duration timeout = kNoTimeout);

  Status Commit(TxnId txn);
  Status Abort(TxnId txn);

  TwoPhaseLockingEngine* engine() { return &engine_; }

 private:
  // Runs `op` (an engine call returning Result<T>) under the service lock,
  // parking on kWaiting until the grant arrives or `timeout` elapses.
  template <typename T, typename Fn>
  Result<T> RunBlocking(TxnId txn, Duration timeout, Fn&& op);

  // Must hold mu_: absorbs newly runnable transactions and wakes waiters.
  void DrainRunnableLocked();

  SystemClock clock_;
  TwoPhaseLockingEngine engine_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_set<TxnId> runnable_;
};

}  // namespace preserial::txn

#endif  // PRESERIAL_TXN_TWO_PL_SERVICE_H_
