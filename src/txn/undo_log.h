#ifndef PRESERIAL_TXN_UNDO_LOG_H_
#define PRESERIAL_TXN_UNDO_LOG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/catalog.h"
#include "storage/row.h"
#include "storage/value.h"

namespace preserial::txn {

// In-memory undo records for one transaction. Applied in reverse on abort
// to restore the tables' pre-transaction state (the WAL then records the
// abort so recovery skips the transaction entirely).
class UndoLog {
 public:
  enum class Kind {
    kUndoInsert,  // Remove the inserted row.
    kUndoUpdate,  // Restore the before-image.
    kUndoDelete,  // Re-insert the deleted row.
  };

  struct Entry {
    Kind kind = Kind::kUndoUpdate;
    std::string table;
    storage::Value key;    // PK of the affected row (post-op for updates).
    storage::Row before;   // Before-image for kUndoUpdate / kUndoDelete.
  };

  void RecordInsert(std::string table, storage::Value key);
  void RecordUpdate(std::string table, storage::Value key,
                    storage::Row before);
  void RecordDelete(std::string table, storage::Row before,
                    storage::Value key);

  // Applies entries newest-first against the catalog. Any failure is an
  // internal invariant violation (undo must not fail).
  Status Apply(storage::Catalog* catalog) const;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<Entry>& entries() const { return entries_; }
  void Clear() { entries_.clear(); }

 private:
  std::vector<Entry> entries_;
};

}  // namespace preserial::txn

#endif  // PRESERIAL_TXN_UNDO_LOG_H_
