#ifndef PRESERIAL_TXN_TXN_MANAGER_H_
#define PRESERIAL_TXN_TXN_MANAGER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/status.h"
#include "lock/lock_manager.h"
#include "storage/database.h"
#include "txn/transaction.h"

namespace preserial::txn {

// Strict two-phase-locking transaction engine over the LDBS — the paper's
// classical baseline, and the executor of the GTM's Secure System
// Transactions.
//
// Non-blocking protocol: operations return
//   - OK            the operation executed;
//   - kWaiting      the lock request was queued. Retry the same operation
//                   after TakeRunnable() reports the transaction;
//   - kDeadlock     the wait would close a waits-for cycle; the caller must
//                   Abort() the transaction;
//   - other errors  the operation failed (NotFound, constraint, ...); the
//                   transaction stays active and the caller decides.
//
// Strictness: all locks are held until Commit/Abort, so the WAL order of
// conflicting operations is a serialization order (what recovery relies
// on).
//
// Not thread-safe; serialize externally (the simulator is single-threaded).
struct TwoPhaseLockingOptions {
  // Acquire kUpdate instead of kShared in ReadForUpdate; avoids the
  // S->X upgrade deadlock of the paper's Sec. II example.
  bool use_update_locks = true;
};

class TwoPhaseLockingEngine {
 public:
  using Options = TwoPhaseLockingOptions;

  explicit TwoPhaseLockingEngine(storage::Database* db,
                                 const Clock* clock = nullptr,
                                 Options options = Options());

  TwoPhaseLockingEngine(const TwoPhaseLockingEngine&) = delete;
  TwoPhaseLockingEngine& operator=(const TwoPhaseLockingEngine&) = delete;

  // --- lifecycle -----------------------------------------------------------

  TxnId Begin();
  Status Commit(TxnId txn);
  Status Abort(TxnId txn);

  // --- operations ----------------------------------------------------------

  // Reads one cell under a shared lock.
  Result<storage::Value> Read(TxnId txn, const std::string& table,
                              const storage::Value& key, size_t column);

  // Reads one cell under an update (or exclusive) lock, declaring intent to
  // write it later.
  Result<storage::Value> ReadForUpdate(TxnId txn, const std::string& table,
                                       const storage::Value& key,
                                       size_t column);

  // Overwrites one cell under an exclusive lock. The primary-key column
  // cannot be the target.
  Status Write(TxnId txn, const std::string& table, const storage::Value& key,
               size_t column, storage::Value v);

  // Inserts a row (exclusive lock on its key).
  Status Insert(TxnId txn, const std::string& table, storage::Row row);

  // Deletes a row by key (exclusive lock).
  Status Delete(TxnId txn, const std::string& table,
                const storage::Value& key);

  // --- wait protocol -------------------------------------------------------

  // Transactions whose blocked lock request has been granted since the last
  // call; they are kActive again and the blocked operation should be
  // retried.
  std::vector<TxnId> TakeRunnable();

  // --- introspection -------------------------------------------------------

  const Transaction* Get(TxnId txn) const;
  TxnPhase PhaseOf(TxnId txn) const;
  lock::LockManager* lock_manager() { return &lock_manager_; }

  struct Counters {
    int64_t begun = 0;
    int64_t committed = 0;
    int64_t aborted = 0;
    int64_t lock_waits = 0;
    int64_t deadlocks = 0;
  };
  const Counters& counters() const { return counters_; }

  // Resource name for a row ("table\x1f<encoded key>"); exposed so tests
  // and the GTM's SST layer can reason about lock footprints.
  static lock::ResourceId RowResource(const std::string& table,
                                      const storage::Value& key);

 private:
  Transaction* GetMutable(TxnId txn);
  // Acquires `mode` on the row resource; maps lock-manager outcomes onto
  // the Status protocol above.
  Status AcquireRow(Transaction* t, const std::string& table,
                    const storage::Value& key, lock::LockMode mode);
  void AbsorbGrants(std::vector<lock::LockGrant> grants);

  storage::Database* db_;
  const Clock* clock_;  // May be null (timestamps then stay 0).
  Options options_;
  lock::LockManager lock_manager_;
  std::unordered_map<TxnId, Transaction> txns_;
  std::vector<TxnId> runnable_;
  Counters counters_;
};

}  // namespace preserial::txn

#endif  // PRESERIAL_TXN_TXN_MANAGER_H_
