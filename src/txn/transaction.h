#ifndef PRESERIAL_TXN_TRANSACTION_H_
#define PRESERIAL_TXN_TRANSACTION_H_

#include <string>

#include "common/clock.h"
#include "common/ids.h"
#include "txn/undo_log.h"

namespace preserial::txn {

// Lifecycle of a baseline-engine transaction.
enum class TxnPhase {
  kActive,
  kWaiting,    // Blocked on a lock.
  kCommitted,
  kAborted,
};

const char* TxnPhaseName(TxnPhase phase);

// Book-keeping for one transaction in the strict-2PL baseline engine.
// The engine owns these; callers refer to transactions by TxnId.
struct Transaction {
  TxnId id = kInvalidTxnId;
  TxnPhase phase = TxnPhase::kActive;
  TimePoint begin_time = 0;
  UndoLog undo;
  // Statistics the experiment harnesses read back.
  int64_t lock_waits = 0;
  int64_t operations = 0;
};

}  // namespace preserial::txn

#endif  // PRESERIAL_TXN_TRANSACTION_H_
