#include "txn/two_pl_service.h"

#include <chrono>

namespace preserial::txn {

using storage::Row;
using storage::Value;

TwoPlService::TwoPlService(storage::Database* db,
                           TwoPhaseLockingOptions options)
    : engine_(db, &clock_, options) {}

TxnId TwoPlService::Begin() {
  std::lock_guard<std::mutex> lk(mu_);
  return engine_.Begin();
}

void TwoPlService::DrainRunnableLocked() {
  bool any = false;
  for (TxnId t : engine_.TakeRunnable()) {
    runnable_.insert(t);
    any = true;
  }
  if (any) cv_.notify_all();
}

template <typename T, typename Fn>
Result<T> TwoPlService::RunBlocking(TxnId txn, Duration timeout, Fn&& op) {
  std::unique_lock<std::mutex> lk(mu_);
  // kNoTimeout would overflow a steady_clock deadline; wait untimed then.
  const bool bounded = !IsNoTimeout(timeout);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(bounded ? timeout : 0.0);
  while (true) {
    Result<T> result = op();
    DrainRunnableLocked();
    if (result.ok() ||
        result.status().code() != StatusCode::kWaiting) {
      if (result.status().code() == StatusCode::kDeadlock) {
        (void)engine_.Abort(txn);
        DrainRunnableLocked();
      }
      return result;
    }
    // Parked: wait until our lock request is granted.
    while (runnable_.count(txn) == 0) {
      if (!bounded) {
        cv_.wait(lk);
        DrainRunnableLocked();
        continue;
      }
      if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) {
        (void)engine_.Abort(txn);
        DrainRunnableLocked();
        return Status::TimedOut("lock wait timed out; transaction aborted");
      }
      DrainRunnableLocked();
    }
    runnable_.erase(txn);
    // Loop: retry the blocked operation, which now holds the lock.
  }
}

Result<Value> TwoPlService::Read(TxnId txn, const std::string& table,
                                 const Value& key, size_t column,
                                 Duration timeout) {
  return RunBlocking<Value>(txn, timeout, [&] {
    return engine_.Read(txn, table, key, column);
  });
}

Result<Value> TwoPlService::ReadForUpdate(TxnId txn, const std::string& table,
                                          const Value& key, size_t column,
                                          Duration timeout) {
  return RunBlocking<Value>(txn, timeout, [&] {
    return engine_.ReadForUpdate(txn, table, key, column);
  });
}

namespace {
// Adapts a Status-returning engine call to the Result<T> blocking loop.
struct Empty {};
}  // namespace

Status TwoPlService::Write(TxnId txn, const std::string& table,
                           const Value& key, size_t column, Value v,
                           Duration timeout) {
  Result<Empty> r = RunBlocking<Empty>(txn, timeout, [&]() -> Result<Empty> {
    Status s = engine_.Write(txn, table, key, column, v);
    if (!s.ok()) return s;
    return Empty{};
  });
  return r.ok() ? Status::Ok() : r.status();
}

Status TwoPlService::Insert(TxnId txn, const std::string& table, Row row,
                            Duration timeout) {
  Result<Empty> r = RunBlocking<Empty>(txn, timeout, [&]() -> Result<Empty> {
    Status s = engine_.Insert(txn, table, row);
    if (!s.ok()) return s;
    return Empty{};
  });
  return r.ok() ? Status::Ok() : r.status();
}

Status TwoPlService::Delete(TxnId txn, const std::string& table,
                            const Value& key, Duration timeout) {
  Result<Empty> r = RunBlocking<Empty>(txn, timeout, [&]() -> Result<Empty> {
    Status s = engine_.Delete(txn, table, key);
    if (!s.ok()) return s;
    return Empty{};
  });
  return r.ok() ? Status::Ok() : r.status();
}

Status TwoPlService::Commit(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  Status s = engine_.Commit(txn);
  DrainRunnableLocked();
  return s;
}

Status TwoPlService::Abort(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  Status s = engine_.Abort(txn);
  DrainRunnableLocked();
  return s;
}

}  // namespace preserial::txn
