#include "txn/occ.h"

#include <utility>

#include "common/strings.h"
#include "storage/table.h"

namespace preserial::txn {

using storage::Row;
using storage::Table;
using storage::Value;

OccEngine::OccEngine(storage::Database* db, Validation validation)
    : db_(db), validation_(validation) {}

TxnId OccEngine::Begin() {
  const TxnId id = db_->NextTxnId();
  txns_.emplace(id, TxnState{});
  ++counters_.begun;
  return id;
}

OccEngine::TxnState* OccEngine::GetLive(TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end() || !it->second.live) return nullptr;
  return &it->second;
}

Result<Value> OccEngine::Read(TxnId txn, const std::string& table,
                              const Value& key, size_t column) {
  TxnState* t = GetLive(txn);
  if (t == nullptr) {
    return Status::FailedPrecondition("Read on non-live OCC transaction");
  }
  PRESERIAL_ASSIGN_OR_RETURN(Table * tab, db_->GetTable(table));
  PRESERIAL_ASSIGN_OR_RETURN(Value v, tab->GetColumnByKey(key, column));
  t->reads.push_back(ReadEntry{table, key, column, v});
  return v;
}

Status OccEngine::BufferAssign(TxnId txn, const std::string& table,
                               const Value& key, size_t column, Value v) {
  TxnState* t = GetLive(txn);
  if (t == nullptr) {
    return Status::FailedPrecondition("write on non-live OCC transaction");
  }
  t->writes.push_back(PendingOp{table, key, column, PendingOp::Kind::kAssign,
                                std::move(v)});
  return Status::Ok();
}

Status OccEngine::BufferAdd(TxnId txn, const std::string& table,
                            const Value& key, size_t column, Value delta) {
  TxnState* t = GetLive(txn);
  if (t == nullptr) {
    return Status::FailedPrecondition("write on non-live OCC transaction");
  }
  t->writes.push_back(
      PendingOp{table, key, column, PendingOp::Kind::kAdd, std::move(delta)});
  return Status::Ok();
}

Status OccEngine::Commit(TxnId txn) {
  TxnState* t = GetLive(txn);
  if (t == nullptr) {
    return Status::FailedPrecondition("Commit on non-live OCC transaction");
  }
  t->live = false;

  // Validation phase.
  if (validation_ == Validation::kValidateReads) {
    for (const ReadEntry& r : t->reads) {
      PRESERIAL_ASSIGN_OR_RETURN(Table * tab, db_->GetTable(r.table));
      Result<Value> now = tab->GetColumnByKey(r.key, r.column);
      if (!now.ok() || now.value() != r.seen) {
        ++counters_.validation_aborts;
        return Status::Aborted(StrFormat(
            "OCC validation failed: %s.%zu changed since read",
            r.table.c_str(), r.column));
      }
    }
  }

  // Execute the frozen operations atomically: dry-run against scratch
  // copies first so a constraint violation aborts without partial effects.
  struct Applied {
    Table* table = nullptr;
    std::string table_name;
    Value key;
    Row after;
  };
  std::vector<Applied> to_apply;
  for (const PendingOp& op : t->writes) {
    PRESERIAL_ASSIGN_OR_RETURN(Table * tab, db_->GetTable(op.table));
    // Re-read the current image, folding in earlier ops of this txn.
    Row current(std::vector<Value>{});
    bool found = false;
    for (Applied& a : to_apply) {
      if (a.table == tab && a.key == op.key) {
        current = a.after;
        found = true;
        break;
      }
    }
    if (!found) {
      PRESERIAL_ASSIGN_OR_RETURN(current, tab->GetByKey(op.key));
    }
    Value next;
    if (op.kind == PendingOp::Kind::kAssign) {
      next = op.operand;
    } else {
      Result<Value> sum = Value::Add(current.at(op.column), op.operand);
      if (!sum.ok()) {
        ++counters_.constraint_aborts;
        return Status::Aborted("OCC apply failed: " + sum.status().message());
      }
      next = std::move(sum).value();
    }
    current.Set(op.column, std::move(next));
    for (const storage::CheckConstraint& c : tab->constraints()) {
      Status s = c.Check(current);
      if (!s.ok()) {
        ++counters_.constraint_aborts;
        return Status::Aborted("OCC constraint abort: " + s.message());
      }
    }
    if (found) {
      for (Applied& a : to_apply) {
        if (a.table == tab && a.key == op.key) {
          a.after = current;
          break;
        }
      }
    } else {
      to_apply.push_back(Applied{tab, op.table, op.key, current});
    }
  }

  // Apply phase: all checks passed; install and log.
  PRESERIAL_RETURN_IF_ERROR(db_->wal()->LogBegin(txn));
  for (Applied& a : to_apply) {
    PRESERIAL_RETURN_IF_ERROR(a.table->UpdateByKey(a.key, a.after));
    PRESERIAL_RETURN_IF_ERROR(
        db_->wal()->LogUpdate(txn, a.table_name, a.key, std::move(a.after)));
  }
  PRESERIAL_RETURN_IF_ERROR(db_->wal()->LogCommit(txn));
  ++counters_.committed;
  return Status::Ok();
}

Status OccEngine::Abort(TxnId txn) {
  TxnState* t = GetLive(txn);
  if (t == nullptr) {
    return Status::FailedPrecondition("Abort on non-live OCC transaction");
  }
  t->live = false;
  ++counters_.user_aborts;
  return Status::Ok();
}

}  // namespace preserial::txn
