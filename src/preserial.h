#ifndef PRESERIAL_PRESERIAL_H_
#define PRESERIAL_PRESERIAL_H_

// Umbrella header for downstream users: the full public API of the
// pre-serialization middleware and its substrates. Include individual
// headers instead when compile time matters.

#include "common/clock.h"       // IWYU pragma: export
#include "common/ids.h"         // IWYU pragma: export
#include "common/random.h"      // IWYU pragma: export
#include "common/stats.h"       // IWYU pragma: export
#include "common/status.h"      // IWYU pragma: export
#include "gtm/gtm.h"            // IWYU pragma: export
#include "gtm/gtm_service.h"    // IWYU pragma: export
#include "mobile/client.h"      // IWYU pragma: export
#include "mobile/multi_session.h"  // IWYU pragma: export
#include "mobile/session.h"     // IWYU pragma: export
#include "model/analytic.h"     // IWYU pragma: export
#include "semantics/commutativity.h"  // IWYU pragma: export
#include "semantics/compatibility.h"  // IWYU pragma: export
#include "semantics/reconcile.h"      // IWYU pragma: export
#include "sim/simulator.h"      // IWYU pragma: export
#include "sql/executor.h"       // IWYU pragma: export
#include "storage/database.h"   // IWYU pragma: export
#include "txn/occ.h"            // IWYU pragma: export
#include "txn/two_pl_service.h" // IWYU pragma: export
#include "txn/txn_manager.h"    // IWYU pragma: export
#include "workload/gtm_experiment.h"  // IWYU pragma: export
#include "workload/synthetic.h"       // IWYU pragma: export
#include "workload/travel_agency.h"   // IWYU pragma: export

#endif  // PRESERIAL_PRESERIAL_H_
