#ifndef PRESERIAL_CHECK_HISTORY_H_
#define PRESERIAL_CHECK_HISTORY_H_

#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "gtm/gtm.h"
#include "gtm/managed_txn.h"
#include "gtm/trace.h"
#include "semantics/compatibility.h"
#include "storage/value.h"

namespace preserial::cluster {
class GtmCluster;
}
namespace preserial::replica {
class ReplicatedGtm;
}

namespace preserial::check {

// A complete record of one GTM execution, sufficient for offline
// correctness checking: the chronological middleware event stream (with the
// structured per-operation payload of TraceLog::RecordOp), the permanent
// state before and after the run, and the per-object member dependencies the
// admission decisions were made under. Events are strictly ordered — every
// Gtm entry point runs under one lock domain, so the trace ring order is the
// real execution order.
struct History {
  std::vector<gtm::TraceEvent> events;

  // X_permanent per (object, member) before the first and after the last
  // event.
  std::map<gtm::Cell, storage::Value> initial;
  std::map<gtm::Cell, storage::Value> final_state;

  // Logical-dependence relation per object (paper Sec. IV), snapshotted at
  // attach time.
  std::map<gtm::ObjectId, semantics::LogicalDependencies> deps;

  // Optional CHECK-constraint lower bounds: every value the GTM installs
  // into (object, member) must be >= the bound. Populated by the harness
  // when the schema carries such a constraint (e.g. quantity >= 0).
  std::map<gtm::Cell, double> min_bound;

  // Committed-entry retention of the recorded GTM (X_tc pruning horizon);
  // the Algorithm 9 validator must not demand conflicts the GTM had
  // legitimately forgotten.
  Duration committed_retention = 1e9;

  // False when the trace ring wrapped or tracing was enabled late: the
  // event stream is missing events and most checks would be unsound.
  bool complete = true;

  std::string ToString() const;
};

// Snapshot of every registered object's X_permanent, one entry per member.
std::map<gtm::Cell, storage::Value> SnapshotPermanent(const gtm::Gtm& gtm);

// Captures a History from a live Gtm: Attach() enables the trace (and
// snapshots initial state + dependencies) before traffic, Finish() harvests
// the events and the final state. Register every object before attaching.
class HistoryRecorder {
 public:
  HistoryRecorder() = default;

  // `gtm` must outlive Finish(). `trace_capacity` bounds the event ring;
  // a run recording more events than this yields complete == false.
  void Attach(gtm::Gtm* gtm, size_t trace_capacity = 1 << 16);

  // Harvests events + final state. May be called once per Attach.
  History Finish();

  bool attached() const { return gtm_ != nullptr; }

 private:
  gtm::Gtm* gtm_ = nullptr;
  History history_;
  int64_t base_recorded_ = 0;
};

// Cluster variant: one independent History per shard (each shard is its own
// serialization domain; cross-shard atomicity is checked by the 2PC suite).
class ClusterHistoryRecorder {
 public:
  void Attach(cluster::GtmCluster* cluster, size_t trace_capacity = 1 << 16);
  std::vector<History> Finish();

 private:
  std::vector<HistoryRecorder> recorders_;
};

// Replica variant: every node's trace is enabled (a promoted backup replays
// shipped records into its own log); Finish() harvests from the node that is
// primary at that point — the authoritative post-failover timeline.
class ReplicaHistoryRecorder {
 public:
  void Attach(replica::ReplicatedGtm* replicated,
              size_t trace_capacity = 1 << 16);
  History Finish();

 private:
  replica::ReplicatedGtm* replicated_ = nullptr;
  History history_;
};

}  // namespace preserial::check

#endif  // PRESERIAL_CHECK_HISTORY_H_
