#ifndef PRESERIAL_CHECK_SEED_H_
#define PRESERIAL_CHECK_SEED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "gtm/policies.h"

namespace preserial::check {

// Which deterministic harness a schedule seed drives. The first three are
// ScheduleExplorer scenarios (explorer.h); the fuzz kinds name the
// self-contained harnesses in tests/ so their failures land in the same
// corpus format and replay through the same regression test.
enum class ScenarioKind {
  kSingleNode,   // One Gtm, sleep/awake/deadlock/maintenance injection.
  kShardedTwoPc, // GtmCluster + ClusterCoordinator, crash-point injection.
  kFailover,     // ReplicatedGtm, kill-primary/promote mid-run.
  kPropertyFuzz, // tests/gtm_fuzzer.h random-walk harness.
  kMemberFuzz,   // tests/gtm_fuzzer.h multi-member variant.
};

const char* ScenarioKindName(ScenarioKind kind);
Result<ScenarioKind> ParseScenarioKind(const std::string& name);

const char* MutationName(gtm::GtmMutation mutation);
Result<gtm::GtmMutation> ParseMutation(const std::string& name);

// A fully replayable schedule: the harness, its parameters, and the decision
// stream. When `choices` is empty the schedule is the seed-driven random
// walk; a non-empty vector pins every decision (shrunk counterexamples are
// stored this way — replaying pads missing decisions with 0).
struct ScheduleSeed {
  ScenarioKind scenario = ScenarioKind::kSingleNode;
  gtm::GtmMutation mutation = gtm::GtmMutation::kNone;
  bool with_constraint = false;   // CHECK lower bound on the qty member.
  size_t steps = 48;              // Decision steps before quiescing.
  uint64_t seed = 0;              // Base PRNG seed.
  std::vector<uint32_t> choices;  // Pinned decisions (empty = from seed).
};

// Text form, one `key=value` per line ('#' comments and blank lines are
// ignored when parsing):
//   scenario=single-node
//   mutation=none
//   constraint=0
//   steps=48
//   seed=12345
//   choices=3,1,4,1,5
std::string FormatScheduleSeed(const ScheduleSeed& seed);
Result<ScheduleSeed> ParseScheduleSeed(const std::string& text);

Result<ScheduleSeed> LoadScheduleSeedFile(const std::string& path);
Status SaveScheduleSeedFile(const std::string& path,
                            const ScheduleSeed& seed);

}  // namespace preserial::check

#endif  // PRESERIAL_CHECK_SEED_H_
