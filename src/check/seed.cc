#include "check/seed.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace preserial::check {

namespace {

struct ScenarioName {
  ScenarioKind kind;
  const char* name;
};
constexpr ScenarioName kScenarioNames[] = {
    {ScenarioKind::kSingleNode, "single-node"},
    {ScenarioKind::kShardedTwoPc, "sharded-2pc"},
    {ScenarioKind::kFailover, "failover"},
    {ScenarioKind::kPropertyFuzz, "property-fuzz"},
    {ScenarioKind::kMemberFuzz, "member-fuzz"},
};

struct MutationEntry {
  gtm::GtmMutation mutation;
  const char* name;
};
constexpr MutationEntry kMutationNames[] = {
    {gtm::GtmMutation::kNone, "none"},
    {gtm::GtmMutation::kSkipAwakeStalenessCheck, "skip-awake-staleness"},
    {gtm::GtmMutation::kReconcileMulDivAsAddSub, "muldiv-as-addsub"},
    {gtm::GtmMutation::kReconcileAddSubLastWrite, "addsub-last-write"},
    {gtm::GtmMutation::kAdmitAssignWithAddSub, "admit-assign-with-addsub"},
};

}  // namespace

const char* ScenarioKindName(ScenarioKind kind) {
  for (const ScenarioName& e : kScenarioNames) {
    if (e.kind == kind) return e.name;
  }
  return "?";
}

Result<ScenarioKind> ParseScenarioKind(const std::string& name) {
  for (const ScenarioName& e : kScenarioNames) {
    if (name == e.name) return e.kind;
  }
  return Status(StatusCode::kInvalidArgument,
                "unknown scenario: " + name);
}

const char* MutationName(gtm::GtmMutation mutation) {
  for (const MutationEntry& e : kMutationNames) {
    if (e.mutation == mutation) return e.name;
  }
  return "?";
}

Result<gtm::GtmMutation> ParseMutation(const std::string& name) {
  for (const MutationEntry& e : kMutationNames) {
    if (name == e.name) return e.mutation;
  }
  return Status(StatusCode::kInvalidArgument,
                "unknown mutation: " + name);
}

std::string FormatScheduleSeed(const ScheduleSeed& seed) {
  std::string out;
  out += StrFormat("scenario=%s\n", ScenarioKindName(seed.scenario));
  out += StrFormat("mutation=%s\n", MutationName(seed.mutation));
  out += StrFormat("constraint=%d\n", seed.with_constraint ? 1 : 0);
  out += StrFormat("steps=%zu\n", seed.steps);
  out += StrFormat("seed=%llu\n",
                   static_cast<unsigned long long>(seed.seed));
  out += "choices=";
  for (size_t i = 0; i < seed.choices.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("%u", seed.choices[i]);
  }
  out += "\n";
  return out;
}

Result<ScheduleSeed> ParseScheduleSeed(const std::string& text) {
  ScheduleSeed seed;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip trailing CR (files may be checked out with CRLF endings).
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("seed line %d: expected key=value, got '%s'",
                              lineno, line.c_str()));
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "scenario") {
      PRESERIAL_ASSIGN_OR_RETURN(seed.scenario, ParseScenarioKind(value));
    } else if (key == "mutation") {
      PRESERIAL_ASSIGN_OR_RETURN(seed.mutation, ParseMutation(value));
    } else if (key == "constraint") {
      seed.with_constraint = value == "1" || value == "true";
    } else if (key == "steps") {
      seed.steps = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (key == "seed") {
      seed.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "choices") {
      seed.choices.clear();
      const char* p = value.c_str();
      while (*p != '\0') {
        char* end = nullptr;
        const unsigned long v = std::strtoul(p, &end, 10);
        if (end == p) {
          return Status(StatusCode::kInvalidArgument,
                        StrFormat("seed line %d: bad choices list '%s'",
                                  lineno, value.c_str()));
        }
        seed.choices.push_back(static_cast<uint32_t>(v));
        p = end;
        if (*p == ',') ++p;
      }
    } else {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("seed line %d: unknown key '%s'", lineno,
                              key.c_str()));
    }
  }
  return seed;
}

Result<ScheduleSeed> LoadScheduleSeedFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status(StatusCode::kNotFound, "cannot open seed file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseScheduleSeed(buf.str());
}

Status SaveScheduleSeedFile(const std::string& path,
                            const ScheduleSeed& seed) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status(StatusCode::kInternal, "cannot write seed file: " + path);
  }
  out << FormatScheduleSeed(seed);
  out.flush();
  if (!out) {
    return Status(StatusCode::kInternal, "short write to seed file: " + path);
  }
  return Status::Ok();
}

}  // namespace preserial::check
