#include "check/explorer.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "common/logging.h"

#include "cluster/cluster.h"
#include "cluster/coordinator.h"
#include "common/clock.h"
#include "common/strings.h"
#include "gtm/gtm.h"
#include "gtm/txn_state.h"
#include "replica/replica.h"
#include "storage/constraint.h"
#include "storage/database.h"
#include "storage/schema.h"
#include "storage/wal.h"

namespace preserial::check {

namespace {

using cluster::ShardId;
using gtm::TxnState;
using semantics::Operation;
using storage::Row;
using storage::Value;

// Every scenario uses the same two-member row: qty (column 1, Int — the
// add/sub and assign playground) and price (column 2, Double — where
// mul/div's eq. 2 result can be installed). Dependencies and the optional
// CHECK bound attach to these members.
storage::Schema MakeSchema() {
  return storage::Schema::Create(
             {
                 storage::ColumnDef{"id", storage::ValueType::kInt64, false},
                 storage::ColumnDef{"qty", storage::ValueType::kInt64, false},
                 storage::ColumnDef{"price", storage::ValueType::kDouble,
                                    false},
             },
             0)
      .value();
}

Row MakeRow(int64_t key) {
  return Row({Value::Int(key), Value::Int(100), Value::Double(8.0)});
}

// Op menu keyed by the walk's action decision: operand types follow the
// member's column type so commits exercise the reconciliation equations
// instead of dying on SST type checks. kQty == member 0, kPrice == member 1.
constexpr semantics::MemberId kQty = 0;
constexpr semantics::MemberId kPrice = 1;

// Odd-indexed objects declare their two members logically dependent, so the
// walk exercises both the member-independent fast path and the dependent
// class matrix of Definition 1.
semantics::LogicalDependencies DepsFor(size_t object_index) {
  semantics::LogicalDependencies deps;
  if (object_index % 2 == 1) deps.AddDependency(0, 1);
  return deps;
}

bool LiveState(TxnState s) {
  return s != TxnState::kCommitted && s != TxnState::kAborted;
}

bool IsLive(gtm::GtmEndpoint* ep, TxnId t) {
  if (t == kInvalidTxnId) return false;
  Result<TxnState> s = ep->StateOf(t);
  return s.ok() && LiveState(s.value());
}

// The shared decision walk over a GtmEndpoint (single-node Gtm and
// ReplicatedGtm both speak it). Each Step() consumes a fixed-shape prefix
// of decisions — slot, action, operand details — so replayed vectors stay
// aligned no matter which branches were no-ops.
class EndpointWalk {
 public:
  EndpointWalk(gtm::GtmEndpoint* ep, ManualClock* clock,
               std::vector<gtm::ObjectId> objects, DecisionSource* d)
      : ep_(ep), clock_(clock), objects_(std::move(objects)), d_(d) {
    slots_.assign(4, kInvalidTxnId);
  }

  // One scheduling decision. `scenario_hook` runs for the scenario-private
  // action (failover injection etc.); pass nullptr for none.
  void Step(const std::function<void()>& scenario_hook) {
    clock_->Advance(0.25 * d_->Choose(4));
    TxnId& t = slots_[d_->Choose(static_cast<uint32_t>(slots_.size()))];
    const uint32_t action = d_->Choose(12);
    switch (action) {
      case 0:
        if (!IsLive(ep_, t)) t = ep_->Begin();
        break;
      case 1:
        InvokeOp(t, d_->Choose(2), Operation::Read());
        break;
      case 2:
        InvokeOp(t, kQty, Operation::Sub(Value::Int(1 + d_->Choose(3))));
        break;
      case 3:
        InvokeOp(t, kQty, Operation::Add(Value::Int(1 + d_->Choose(3))));
        break;
      case 4:
        InvokeOp(t, kQty, Operation::Assign(Value::Int(5 * d_->Choose(8))));
        break;
      case 5:
        switch (d_->Choose(3)) {
          case 0:
            InvokeOp(t, kPrice, Operation::Mul(Value::Int(2)));
            break;
          case 1:
            InvokeOp(t, kPrice, Operation::Div(Value::Int(2)));
            break;
          default:
            InvokeOp(t, kPrice, Operation::Assign(Value::Double(2.5)));
            break;
        }
        break;
      case 6:
        if (t != kInvalidTxnId) (void)ep_->RequestCommit(t);
        break;
      case 7:
        if (t != kInvalidTxnId) (void)ep_->RequestAbort(t);
        break;
      case 8:
        if (t != kInvalidTxnId) (void)ep_->Sleep(t);
        break;
      case 9:
        if (t != kInvalidTxnId) (void)ep_->Awake(t);
        break;
      case 10:
        (void)ep_->AbortExpiredWaits(d_->Choose(2) == 0 ? 0.4 : 1.5);
        break;
      case 11:
        if (scenario_hook) scenario_hook();
        break;
      default:
        break;
    }
    (void)ep_->TakeEvents();
  }

  // Drives every slot to a terminal state. Sleepers are woken first (the
  // Algorithm 9 gate fires here), then actives commit or abort by decision,
  // and anything still live is aborted.
  void Quiesce() {
    for (int pass = 0; pass < 4; ++pass) {
      bool any_live = false;
      for (TxnId& t : slots_) {
        if (!IsLive(ep_, t)) continue;
        any_live = true;
        Result<TxnState> s = ep_->StateOf(t);
        if (!s.ok()) continue;
        switch (s.value()) {
          case TxnState::kSleeping:
            (void)ep_->Awake(t);
            break;
          case TxnState::kActive:
            if (d_->Choose(2) == 0) {
              (void)ep_->RequestCommit(t);
            } else {
              (void)ep_->RequestAbort(t);
            }
            break;
          default:
            (void)ep_->RequestAbort(t);
            break;
        }
        (void)ep_->TakeEvents();
      }
      if (!any_live) return;
    }
    for (TxnId& t : slots_) {
      if (IsLive(ep_, t)) (void)ep_->RequestAbort(t);
    }
  }

 private:
  void InvokeOp(TxnId t, semantics::MemberId member, const Operation& op) {
    // Operand decisions are consumed by the caller before this point; the
    // object decision is consumed unconditionally too so replay alignment
    // never depends on slot liveness.
    const gtm::ObjectId& obj =
        objects_[d_->Choose(static_cast<uint32_t>(objects_.size()))];
    if (t == kInvalidTxnId) return;
    (void)ep_->Invoke(t, obj, member, op);
  }

  gtm::GtmEndpoint* ep_;
  ManualClock* clock_;
  std::vector<gtm::ObjectId> objects_;
  DecisionSource* d_;
  std::vector<TxnId> slots_;
};

void ApplyMinBound(const ScheduleSeed& seed,
                   const std::vector<gtm::ObjectId>& objects, History* h) {
  if (!seed.with_constraint) return;
  for (const gtm::ObjectId& id : objects) {
    h->min_bound[gtm::Cell{id, 0}] = 0.0;  // qty >= 0.
  }
}

// --- single node -----------------------------------------------------------

std::vector<History> DriveSingleNode(const ScheduleSeed& seed,
                                     DecisionSource* d) {
  storage::Database db;
  PRESERIAL_CHECK(db.Open().ok());
  PRESERIAL_CHECK(db.CreateTable("obj", MakeSchema()).ok());
  if (seed.with_constraint) {
    PRESERIAL_CHECK(db.AddConstraint("obj", storage::CheckConstraint(
                                                "nonneg", 1,
                                                storage::CompareOp::kGe,
                                                Value::Int(0)))
                        .ok());
  }
  ManualClock clock;
  clock.Set(0.0);
  gtm::GtmOptions opts;
  opts.mutation = seed.mutation;
  gtm::Gtm gtm(&db, &clock, opts);

  std::vector<gtm::ObjectId> objects = {"A", "B"};
  for (size_t i = 0; i < objects.size(); ++i) {
    PRESERIAL_CHECK(
        db.InsertRow("obj", MakeRow(static_cast<int64_t>(i))).ok());
    PRESERIAL_CHECK(gtm.RegisterObject(objects[i], "obj",
                                       Value::Int(static_cast<int64_t>(i)),
                                       {1, 2}, DepsFor(i))
                        .ok());
  }

  HistoryRecorder recorder;
  recorder.Attach(&gtm);

  EndpointWalk walk(&gtm, &clock, objects, d);
  for (size_t i = 0; i < seed.steps; ++i) {
    walk.Step([&] {
      // Scenario-private action: the maintenance sweeps the endpoint
      // interface does not carry.
      if (d->Choose(2) == 0) {
        (void)gtm.SleepIdleTransactions(d->Choose(2) == 0 ? 0.5 : 1.5);
      } else {
        (void)gtm.DetectAndResolveDeadlocks();
      }
    });
  }
  walk.Quiesce();

  History h = recorder.Finish();
  ApplyMinBound(seed, objects, &h);
  return {std::move(h)};
}

// --- sharded 2PC -----------------------------------------------------------

// A cross-shard transaction under exploration: one branch per touched
// shard, driven through the cluster endpoints and committed atomically by
// the coordinator.
struct GlobalTxn {
  std::vector<std::pair<ShardId, TxnId>> branches;
};

std::vector<History> DriveShardedTwoPc(const ScheduleSeed& seed,
                                       DecisionSource* d) {
  constexpr size_t kShards = 2;
  ManualClock clock;
  clock.Set(0.0);
  gtm::GtmOptions opts;
  opts.mutation = seed.mutation;
  cluster::GtmCluster cl(kShards, &clock, opts);
  PRESERIAL_CHECK(cl.CreateTableAllShards("obj", MakeSchema()).ok());

  std::vector<gtm::ObjectId> objects = {"O0", "O1", "O2", "O3"};
  std::map<ShardId, std::vector<gtm::ObjectId>> by_shard;
  for (size_t i = 0; i < objects.size(); ++i) {
    const ShardId s = cl.ShardOf(objects[i]);
    PRESERIAL_CHECK(
        cl.InsertRow(s, "obj", MakeRow(static_cast<int64_t>(i))).ok());
    PRESERIAL_CHECK(cl.RegisterObject(objects[i], "obj",
                                      Value::Int(static_cast<int64_t>(i)),
                                      {1, 2}, DepsFor(i))
                        .ok());
    by_shard[s].push_back(objects[i]);
  }

  ClusterHistoryRecorder recorder;
  recorder.Attach(&cl);

  storage::MemoryWalStorage wal;
  auto coord = std::make_unique<cluster::ClusterCoordinator>(&cl, &wal);
  // The coordinator "crashed" mid-commit: a successor over the same WAL
  // must Recover() before driving anything else.
  auto reincarnate = [&] {
    coord = std::make_unique<cluster::ClusterCoordinator>(&cl, &wal);
    PRESERIAL_CHECK(coord->Recover().ok());
  };

  std::vector<GlobalTxn> slots(3);
  TxnId next_global = 1000000;  // Distinct from every branch id.
  auto slot_live = [&](const GlobalTxn& g) {
    for (const auto& [s, b] : g.branches) {
      if (IsLive(cl.endpoint(s), b)) return true;
    }
    return false;
  };

  for (size_t step = 0; step < seed.steps; ++step) {
    clock.Advance(0.25 * d->Choose(4));
    GlobalTxn& g = slots[d->Choose(static_cast<uint32_t>(slots.size()))];
    const uint32_t action = d->Choose(12);
    // Branch/object decisions are consumed unconditionally (see
    // EndpointWalk::InvokeOp for why).
    switch (action) {
      case 0: {  // Begin a fresh global transaction on 1-2 shards.
        const bool both = d->Choose(2) == 1;
        const ShardId first = d->Choose(kShards);
        if (slot_live(g)) break;
        g.branches.clear();
        for (ShardId s = 0; s < static_cast<ShardId>(kShards); ++s) {
          if (both || s == first) {
            g.branches.emplace_back(s, cl.endpoint(s)->Begin());
          }
        }
        break;
      }
      case 1:
      case 2:
      case 3:
      case 4:
      case 5: {  // Operation on one branch.
        const uint32_t bi = d->Choose(
            static_cast<uint32_t>(g.branches.empty() ? 1 : g.branches.size()));
        const uint32_t oi = d->Choose(2);
        const uint32_t k = d->Choose(8);
        if (g.branches.empty()) break;
        const auto& [s, b] = g.branches[bi];
        const auto& shard_objects = by_shard[s];
        if (shard_objects.empty()) break;
        const gtm::ObjectId& obj = shard_objects[oi % shard_objects.size()];
        semantics::MemberId member = kQty;
        Operation op = Operation::Read();
        switch (action) {
          case 1: member = k % 2; break;
          case 2: op = Operation::Sub(Value::Int(1 + k % 3)); break;
          case 3: op = Operation::Add(Value::Int(1 + k % 3)); break;
          case 4: op = Operation::Assign(Value::Int(5 * k)); break;
          case 5:
            member = kPrice;
            op = k % 3 == 0   ? Operation::Mul(Value::Int(2))
                 : k % 3 == 1 ? Operation::Div(Value::Int(2))
                              : Operation::Assign(Value::Double(2.5));
            break;
          default: break;
        }
        (void)cl.endpoint(s)->Invoke(b, obj, member, op);
        break;
      }
      case 6: {  // Global commit, optionally crashing the coordinator.
        const uint32_t crash = d->Choose(4);
        if (g.branches.empty()) break;
        if (crash == 2) {
          coord->set_crash_point(cluster::CrashPoint::kAfterPrepare);
        } else if (crash == 3) {
          coord->set_crash_point(cluster::CrashPoint::kAfterDecision);
        }
        const Status st = coord->CommitGlobal(next_global++, g.branches);
        if (st.code() == StatusCode::kUnavailable) reincarnate();
        g.branches.clear();
        break;
      }
      case 7: {  // Global abort.
        if (g.branches.empty()) break;
        (void)coord->AbortGlobal(next_global++, g.branches);
        g.branches.clear();
        break;
      }
      case 8:
      case 9: {  // Sleep / awake one branch.
        const uint32_t bi = d->Choose(
            static_cast<uint32_t>(g.branches.empty() ? 1 : g.branches.size()));
        if (g.branches.empty()) break;
        const auto& [s, b] = g.branches[bi];
        if (action == 8) {
          (void)cl.endpoint(s)->Sleep(b);
        } else {
          (void)cl.endpoint(s)->Awake(b);
        }
        break;
      }
      case 10: {  // Maintenance sweep on one shard.
        const ShardId s = d->Choose(kShards);
        if (d->Choose(2) == 0) {
          (void)cl.shard(s)->AbortExpiredWaits(1.0);
        } else {
          (void)cl.shard(s)->SleepIdleTransactions(1.0);
        }
        break;
      }
      default:
        break;
    }
    for (ShardId s = 0; s < static_cast<ShardId>(kShards); ++s) {
      (void)cl.endpoint(s)->TakeEvents();
    }
  }

  // Quiesce: resolve in-doubt branches first, then retire every live slot.
  PRESERIAL_CHECK(coord->Recover().ok());
  for (GlobalTxn& g : slots) {
    for (const auto& [s, b] : g.branches) {
      if (!IsLive(cl.endpoint(s), b)) continue;
      Result<TxnState> st = cl.endpoint(s)->StateOf(b);
      if (st.ok() && st.value() == TxnState::kSleeping) {
        (void)cl.endpoint(s)->Awake(b);
      }
    }
    if (!g.branches.empty() && d->Choose(2) == 0) {
      (void)coord->CommitGlobal(next_global++, g.branches);
    }
    for (const auto& [s, b] : g.branches) {
      if (IsLive(cl.endpoint(s), b)) (void)cl.endpoint(s)->RequestAbort(b);
    }
    g.branches.clear();
  }

  std::vector<History> histories = recorder.Finish();
  for (size_t s = 0; s < histories.size(); ++s) {
    if (!seed.with_constraint) continue;
    for (const gtm::ObjectId& id : by_shard[static_cast<ShardId>(s)]) {
      histories[s].min_bound[gtm::Cell{id, 0}] = 0.0;
    }
  }
  return histories;
}

// --- failover --------------------------------------------------------------

std::vector<History> DriveFailover(const ScheduleSeed& seed,
                                   DecisionSource* d) {
  ManualClock clock;
  clock.Set(0.0);
  gtm::GtmOptions opts;
  opts.mutation = seed.mutation;
  replica::ReplicaOptions ropts;
  ropts.num_backups = 1;
  Rng ship_rng(seed.seed ^ 0x9e3779b97f4a7c15ULL);
  replica::ReplicatedGtm rep(&clock, opts, ropts, &ship_rng);

  PRESERIAL_CHECK(rep.CreateTable("obj", MakeSchema()).ok());
  if (seed.with_constraint) {
    PRESERIAL_CHECK(rep.AddConstraint("obj", storage::CheckConstraint(
                                                 "nonneg", 1,
                                                 storage::CompareOp::kGe,
                                                 Value::Int(0)))
                        .ok());
  }
  std::vector<gtm::ObjectId> objects = {"A", "B"};
  for (size_t i = 0; i < objects.size(); ++i) {
    PRESERIAL_CHECK(
        rep.InsertRow("obj", MakeRow(static_cast<int64_t>(i))).ok());
    PRESERIAL_CHECK(rep.RegisterObject(objects[i], "obj",
                                       Value::Int(static_cast<int64_t>(i)),
                                       {1, 2}, DepsFor(i))
                        .ok());
  }

  ReplicaHistoryRecorder recorder;
  recorder.Attach(&rep);

  bool killed = false;
  bool promoted = false;
  EndpointWalk walk(&rep, &clock, objects, d);
  for (size_t i = 0; i < seed.steps; ++i) {
    walk.Step([&] {
      // At most one failover per schedule: kill the primary once, later
      // promote the surviving backup (calls in between hit a dead primary).
      if (!killed) {
        rep.KillPrimary();
        killed = true;
      } else if (!promoted) {
        (void)rep.Pump();
        if (rep.Promote().ok()) promoted = true;
      } else {
        (void)rep.SleepIdleTransactions(d->Choose(2) == 0 ? 0.5 : 1.5);
      }
    });
  }
  // The authoritative timeline lives on a live primary; finish the
  // failover if the walk killed but never promoted.
  if (killed && !promoted) {
    (void)rep.Pump();
    PRESERIAL_CHECK(rep.Promote().ok());
  }
  walk.Quiesce();

  History h = recorder.Finish();
  ApplyMinBound(seed, objects, &h);
  return {std::move(h)};
}

}  // namespace

std::string ScheduleOutcome::Describe() const {
  for (size_t i = 0; i < reports.size(); ++i) {
    if (!reports[i].ok()) {
      return StrFormat("history %zu: %s", i, reports[i].ToString().c_str());
    }
  }
  return "ok";
}

ScheduleOutcome RunSchedule(const ScheduleSeed& seed,
                            const CheckOptions& check) {
  std::unique_ptr<DecisionSource> source;
  if (seed.choices.empty()) {
    source = std::make_unique<RngDecisionSource>(seed.seed);
  } else {
    source = std::make_unique<ReplayDecisionSource>(seed.choices);
  }

  ScheduleOutcome out;
  switch (seed.scenario) {
    case ScenarioKind::kSingleNode:
      out.histories = DriveSingleNode(seed, source.get());
      break;
    case ScenarioKind::kShardedTwoPc:
      out.histories = DriveShardedTwoPc(seed, source.get());
      break;
    case ScenarioKind::kFailover:
      out.histories = DriveFailover(seed, source.get());
      break;
    default:
      PRESERIAL_CHECK(false &&
                      "fuzz scenarios replay in their own test harness");
  }
  out.choices = source->recorded();
  out.reports.reserve(out.histories.size());
  for (const History& h : out.histories) {
    out.reports.push_back(CheckHistory(h, check));
  }
  return out;
}

ShrinkResult ShrinkSchedule(const ScheduleSeed& failing,
                            const CheckOptions& check, size_t budget) {
  ShrinkResult result;
  result.seed = failing;

  auto fails = [&](const std::vector<uint32_t>& choices) {
    // An empty vector means "seed-driven walk" to RunSchedule, not "all
    // zeros" — never shrink down to it.
    if (choices.empty()) return false;
    if (result.runs >= budget) return false;
    ++result.runs;
    ScheduleSeed candidate = failing;
    candidate.choices = choices;
    return !RunSchedule(candidate, check).ok();
  };

  // Materialize the decision vector if the failure was seed-driven.
  std::vector<uint32_t> best = failing.choices;
  if (best.empty()) {
    ScheduleSeed replay = failing;
    ScheduleOutcome outcome = RunSchedule(replay, check);
    best = outcome.choices;
    if (outcome.ok()) return result;  // Not reproducible; nothing to shrink.
  }

  bool progress = true;
  while (progress && result.runs < budget) {
    progress = false;
    // 1. Truncate the tail (replay pads with 0): halving binary search for
    //    the shortest failing prefix.
    size_t lo = 0, hi = best.size();
    while (lo < hi && result.runs < budget) {
      const size_t mid = lo + (hi - lo) / 2;
      std::vector<uint32_t> cand(best.begin(), best.begin() + mid);
      if (fails(cand)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    if (hi < best.size()) {
      best.resize(hi);
      progress = true;
    }
    // 2. Delete chunks, halving sizes down to 1.
    for (size_t chunk = std::max<size_t>(best.size() / 2, 1); chunk >= 1;
         chunk /= 2) {
      for (size_t start = 0; start + chunk <= best.size();) {
        std::vector<uint32_t> cand;
        cand.reserve(best.size() - chunk);
        cand.insert(cand.end(), best.begin(), best.begin() + start);
        cand.insert(cand.end(), best.begin() + start + chunk, best.end());
        if (fails(cand)) {
          best = std::move(cand);
          progress = true;
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) break;
    }
    // 3. Zero individual decisions (0 is every action's cheapest arm).
    for (size_t i = 0; i < best.size(); ++i) {
      if (best[i] == 0) continue;
      std::vector<uint32_t> cand = best;
      cand[i] = 0;
      if (fails(cand)) {
        best = std::move(cand);
        progress = true;
      }
    }
  }

  result.seed.choices = std::move(best);
  return result;
}

void ScheduleExplorer::Record(const ScheduleSeed& seed,
                              ExplorationResult* result) {
  ScheduleOutcome outcome = RunSchedule(seed, check_);
  ++result->schedules;
  if (outcome.ok()) return;
  ++result->failures;
  if (result->first_failure.has_value()) return;
  result->first_failure_report = outcome.Describe();
  ScheduleSeed failing = seed;
  failing.choices = outcome.choices;
  result->first_failure = ShrinkSchedule(failing, check_).seed;
}

ExplorationResult ScheduleExplorer::ExploreRandom(size_t schedules) {
  ExplorationResult result;
  for (size_t i = 0; i < schedules; ++i) {
    ScheduleSeed seed = base_;
    seed.choices.clear();
    seed.seed = base_.seed + i;
    Record(seed, &result);
  }
  return result;
}

ExplorationResult ScheduleExplorer::ExploreExhaustive(size_t depth,
                                                      uint32_t fanout) {
  ExplorationResult result;
  PRESERIAL_CHECK(fanout >= 1);
  std::vector<uint32_t> vec(depth, 0);
  while (true) {
    ScheduleSeed seed = base_;
    seed.choices = vec;
    Record(seed, &result);
    // Odometer increment over {0..fanout-1}^depth.
    size_t i = 0;
    for (; i < depth; ++i) {
      if (++vec[i] < fanout) break;
      vec[i] = 0;
    }
    if (i == depth) break;
  }
  return result;
}

}  // namespace preserial::check
