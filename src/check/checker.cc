#include "check/checker.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "semantics/commutativity.h"
#include "semantics/compatibility.h"
#include "semantics/reconcile.h"

namespace preserial::check {
namespace {

using gtm::Cell;
using gtm::ObjectId;
using gtm::TraceEvent;
using gtm::TraceEventKind;
using semantics::MemberId;
using semantics::OpClass;
using semantics::Operation;
using storage::Value;

std::string CellName(const Cell& cell) {
  return StrFormat("%s#%zu", cell.object.c_str(), cell.member);
}

// --- history digestion ----------------------------------------------------------

// One disconnection episode of a transaction, as event-index window plus the
// paper's timestamps (A_t_sleep, and the wake instant Algorithm 9 ran at).
struct SleepWindow {
  size_t begin = 0;
  size_t end = 0;  // kAwake / kPrepare / terminal index, or history end.
  TimePoint slept_at = 0;
  bool woke = false;         // Closed by a successful Awake or Prepare.
  bool awake_abort = false;  // Closed by kAwakeAbort.
  TimePoint wake_time = 0;
};

// Everything a transaction did to one (object, member) cell.
struct CellRecord {
  size_t first_apply = 0;
  OpClass cls = OpClass::kRead;  // Strongest class (read upgrades once).
  size_t upgrade_index = 0;      // Index of the first mutating apply.
  std::vector<Operation> ops;    // Applied operations, in order.
};

// A queued invocation's lifetime (granted waits close at the grant's apply;
// refused ones at the refusal; the rest at the transaction's terminal).
struct WaitRecord {
  size_t begin = 0;
  size_t end = 0;
  Cell cell;
  OpClass cls = OpClass::kRead;
};

struct TxnRecord {
  TxnId id = kInvalidTxnId;
  std::map<Cell, CellRecord> cells;
  std::vector<SleepWindow> sleeps;
  std::vector<WaitRecord> waits;
  std::optional<size_t> commit;
  TimePoint commit_time = 0;
  std::optional<size_t> prepare;
  std::optional<size_t> terminal;

  bool HasOpenSleep(size_t horizon) const {
    return !sleeps.empty() && sleeps.back().end == horizon;
  }
};

struct Digest {
  std::map<TxnId, TxnRecord> txns;
  // last_commit_time[i] = time of the latest kCommit at an index < i —
  // the PruneCommitted horizon the GTM had applied by then.
  std::vector<TimePoint> last_commit_time;
};

Digest DigestEvents(const History& h) {
  Digest d;
  const size_t n = h.events.size();
  d.last_commit_time.assign(n + 1, -kNoTimeout);
  for (size_t i = 0; i < n; ++i) {
    d.last_commit_time[i + 1] = d.last_commit_time[i];
    const TraceEvent& e = h.events[i];
    if (e.txn == kInvalidTxnId) continue;
    TxnRecord& t = d.txns[e.txn];
    t.id = e.txn;
    switch (e.kind) {
      case TraceEventKind::kApply: {
        const Cell cell{e.object, e.member};
        auto [it, fresh] = t.cells.try_emplace(cell);
        CellRecord& c = it->second;
        if (fresh) c.first_apply = i;
        if (e.op.cls != OpClass::kRead && c.cls == OpClass::kRead) {
          c.cls = e.op.cls;
          c.upgrade_index = i;
        }
        c.ops.push_back(e.op);
        for (WaitRecord& w : t.waits) {
          if (w.end == n && w.cell == cell) w.end = i;
        }
        break;
      }
      case TraceEventKind::kWait:
        t.waits.push_back(WaitRecord{i, n, Cell{e.object, e.member},
                                     e.op.cls});
        break;
      case TraceEventKind::kDeadlockRefusal:
        // The refused entry was backed out of the queue.
        for (WaitRecord& w : t.waits) {
          if (w.end == n && w.cell.object == e.object) w.end = i;
        }
        break;
      case TraceEventKind::kSleep: {
        SleepWindow w;
        w.begin = i;
        w.end = n;
        w.slept_at = e.time;
        t.sleeps.push_back(w);
        break;
      }
      case TraceEventKind::kAwake:
        if (t.HasOpenSleep(n)) {
          SleepWindow& w = t.sleeps.back();
          w.end = i;
          w.woke = true;
          w.wake_time = e.time;
        }
        break;
      case TraceEventKind::kPrepare:
        t.prepare = i;
        // Prepare of a Sleeping transaction votes as an implicit awake
        // (Algorithm 9 runs); from here it is a live Committing holder.
        if (t.HasOpenSleep(n)) {
          SleepWindow& w = t.sleeps.back();
          w.end = i;
          w.woke = true;
          w.wake_time = e.time;
        }
        break;
      case TraceEventKind::kCommit:
        t.commit = i;
        t.commit_time = e.time;
        t.terminal = i;
        if (t.HasOpenSleep(n)) t.sleeps.back().end = i;
        for (WaitRecord& w : t.waits) {
          if (w.end == n) w.end = i;
        }
        d.last_commit_time[i + 1] = e.time;
        break;
      case TraceEventKind::kAbort:
      case TraceEventKind::kAwakeAbort:
        t.terminal = i;
        if (t.HasOpenSleep(n)) {
          SleepWindow& w = t.sleeps.back();
          w.end = i;
          if (e.kind == TraceEventKind::kAwakeAbort) {
            w.awake_abort = true;
            w.wake_time = e.time;
          }
        }
        for (WaitRecord& w : t.waits) {
          if (w.end == n) w.end = i;
        }
        break;
      default:
        break;  // Client / transport / replication / cluster lanes.
    }
  }
  return d;
}

// --- value / state helpers ------------------------------------------------------

using State = std::map<Cell, Value>;

bool StatesEquivalent(const State& a, const State& b, double eps,
                      std::string* diff) {
  for (const auto& [cell, va] : a) {
    auto it = b.find(cell);
    const Value vb = it == b.end() ? Value::Null() : it->second;
    if (!ValuesEquivalent(va, vb, eps)) {
      if (diff != nullptr) {
        *diff = StrFormat("%s: %s vs %s", CellName(cell).c_str(),
                          va.ToString().c_str(), vb.ToString().c_str());
      }
      return false;
    }
  }
  return true;
}

std::string StateKey(const State& state) {
  std::string s;
  for (const auto& [cell, v] : state) v.EncodeTo(&s);
  return s;
}

// --- Definition 1: concurrent holders must be compatible ------------------------

// [begin, end) event-index span during which a txn actively held `cls` on a
// cell — sleep windows removed, read/upgraded-class phases split.
struct Span {
  size_t begin = 0;
  size_t end = 0;
  OpClass cls = OpClass::kRead;
};

std::vector<Span> ActiveSpans(const TxnRecord& t, const CellRecord& c,
                              size_t horizon) {
  const size_t end = t.terminal.value_or(horizon);
  std::vector<Span> pieces;
  if (c.cls != OpClass::kRead && c.upgrade_index > c.first_apply) {
    pieces.push_back(Span{c.first_apply, c.upgrade_index, OpClass::kRead});
    pieces.push_back(Span{c.upgrade_index, end, c.cls});
  } else {
    pieces.push_back(Span{c.first_apply, end, c.cls});
  }
  for (const SleepWindow& w : t.sleeps) {
    std::vector<Span> next;
    for (const Span& s : pieces) {
      if (w.end <= s.begin || w.begin >= s.end) {
        next.push_back(s);
        continue;
      }
      if (s.begin < w.begin) next.push_back(Span{s.begin, w.begin, s.cls});
      if (w.end < s.end) next.push_back(Span{w.end, s.end, s.cls});
    }
    pieces = std::move(next);
  }
  return pieces;
}

void CheckDefinition1(const History& h, const Digest& d,
                      std::vector<Violation>* out) {
  struct Holder {
    TxnId txn;
    MemberId member;
    Span span;
  };
  std::map<ObjectId, std::vector<Holder>> by_object;
  const size_t horizon = h.events.size();
  for (const auto& [id, t] : d.txns) {
    for (const auto& [cell, c] : t.cells) {
      for (const Span& s : ActiveSpans(t, c, horizon)) {
        if (s.begin < s.end) {
          by_object[cell.object].push_back(Holder{id, cell.member, s});
        }
      }
    }
  }
  for (const auto& [object, holders] : by_object) {
    auto dit = h.deps.find(object);
    const semantics::LogicalDependencies deps =
        dit == h.deps.end() ? semantics::LogicalDependencies{} : dit->second;
    for (size_t i = 0; i < holders.size(); ++i) {
      for (size_t j = i + 1; j < holders.size(); ++j) {
        const Holder& a = holders[i];
        const Holder& b = holders[j];
        if (a.txn == b.txn) continue;
        if (!deps.Dependent(a.member, b.member)) continue;
        const size_t lo = std::max(a.span.begin, b.span.begin);
        const size_t hi = std::min(a.span.end, b.span.end);
        if (lo >= hi) continue;
        if (semantics::Compatible(a.span.cls, b.span.cls)) continue;
        out->push_back(Violation{
            "definition1",
            StrFormat("txn %llu holds %s and txn %llu holds %s on %s "
                      "(members %zu/%zu, dependent) concurrently over "
                      "events [%zu, %zu)",
                      static_cast<unsigned long long>(a.txn),
                      OpClassName(a.span.cls),
                      static_cast<unsigned long long>(b.txn),
                      OpClassName(b.span.cls), object.c_str(), a.member,
                      b.member, lo, hi)});
      }
    }
  }
}

// --- reconciliation replay (eqs. 1-2 + CHECK bounds) ----------------------------

void CheckReconciliation(const History& h, const Digest& d, double eps,
                         std::vector<Violation>* out) {
  State perm = h.initial;
  struct Copy {
    Value read;
    Value temp;
  };
  std::map<TxnId, std::map<Cell, Copy>> copies;
  for (size_t i = 0; i < h.events.size(); ++i) {
    const TraceEvent& e = h.events[i];
    switch (e.kind) {
      case TraceEventKind::kApply: {
        const Cell cell{e.object, e.member};
        auto pit = perm.find(cell);
        if (pit == perm.end()) break;  // Object unknown to the snapshot.
        auto& copy = copies[e.txn];
        auto [cit, fresh] = copy.try_emplace(cell);
        if (fresh) {
          // Fresh grant: X_read = A_temp = X_permanent (Alg 2).
          cit->second.read = pit->second;
          cit->second.temp = pit->second;
        }
        Result<Value> next = semantics::Transition(cit->second.temp, e.op);
        if (!next.ok()) {
          out->push_back(Violation{
              "reconciliation",
              StrFormat("replaying %s by txn %llu on %s failed: %s",
                        e.op.ToString().c_str(),
                        static_cast<unsigned long long>(e.txn),
                        CellName(cell).c_str(),
                        next.status().message().c_str())});
          break;
        }
        cit->second.temp = std::move(next).value();
        break;
      }
      case TraceEventKind::kCommit: {
        auto cop = copies.find(e.txn);
        if (cop == copies.end()) break;  // Read-free or op-free commit.
        auto tit = d.txns.find(e.txn);
        if (tit == d.txns.end()) break;
        for (auto& [cell, copy] : cop->second) {
          const CellRecord& cr = tit->second.cells.at(cell);
          if (cr.cls == OpClass::kRead) continue;  // Reads install nothing.
          Result<Value> merged = semantics::Reconcile(
              cr.cls, copy.read, copy.temp, perm.at(cell));
          if (!merged.ok()) {
            out->push_back(Violation{
                "reconciliation",
                StrFormat("merging txn %llu on %s failed: %s",
                          static_cast<unsigned long long>(e.txn),
                          CellName(cell).c_str(),
                          merged.status().message().c_str())});
            continue;
          }
          const Value installed = std::move(merged).value();
          auto bit = h.min_bound.find(cell);
          if (bit != h.min_bound.end() && installed.is_numeric()) {
            const double v = installed.ToDouble().value();
            if (v < bit->second - eps) {
              out->push_back(Violation{
                  "constraint",
                  StrFormat("txn %llu installed %s into %s below CHECK "
                            "bound %g",
                            static_cast<unsigned long long>(e.txn),
                            installed.ToString().c_str(),
                            CellName(cell).c_str(), bit->second)});
            }
          }
          perm[cell] = installed;
        }
        copies.erase(cop);
        break;
      }
      case TraceEventKind::kAbort:
      case TraceEventKind::kAwakeAbort:
        copies.erase(e.txn);
        break;
      default:
        break;
    }
  }
  std::string diff;
  if (!StatesEquivalent(perm, h.final_state, eps, &diff)) {
    out->push_back(Violation{
        "reconciliation",
        "replaying the commit sequence through eqs. 1-2 predicts a "
        "different permanent state than the GTM installed: " +
            diff});
  }
  for (const auto& [cell, v] : h.final_state) {
    auto bit = h.min_bound.find(cell);
    if (bit != h.min_bound.end() && v.is_numeric() &&
        v.ToDouble().value() < bit->second - eps) {
      out->push_back(Violation{
          "constraint", StrFormat("final value %s of %s below CHECK bound %g",
                                  v.ToString().c_str(),
                                  CellName(cell).c_str(), bit->second)});
    }
  }
}

// --- serial-equivalence search --------------------------------------------------

// Applies every operation of `t` to `state` through the reference serial
// interpreter (semantics::Transition); nullopt when some transition is
// undefined in this order.
std::optional<State> ApplySerially(State state, const TxnRecord& t) {
  for (const auto& [cell, c] : t.cells) {
    auto it = state.find(cell);
    if (it == state.end()) continue;
    Value v = it->second;
    for (const Operation& op : c.ops) {
      Result<Value> next = semantics::Transition(v, op);
      if (!next.ok()) return std::nullopt;
      v = std::move(next).value();
    }
    it->second = std::move(v);
  }
  return state;
}

struct SerialSearch {
  const std::vector<const TxnRecord*>& txns;
  const State& target;
  double eps;
  size_t orders_tried = 0;
  std::unordered_set<std::string> seen;

  bool Dfs(State state, uint64_t used) {
    if (used == (uint64_t{1} << txns.size()) - 1) {
      ++orders_tried;
      return StatesEquivalent(state, target, eps, nullptr) &&
             StatesEquivalent(target, state, eps, nullptr);
    }
    std::string key = StateKey(state);
    for (int b = 0; b < 8; ++b) {
      key += static_cast<char>((used >> (8 * b)) & 0xff);
    }
    if (!seen.insert(key).second) return false;
    for (size_t i = 0; i < txns.size(); ++i) {
      if ((used >> i) & 1) continue;
      std::optional<State> next = ApplySerially(state, *txns[i]);
      if (!next.has_value()) continue;
      if (Dfs(std::move(*next), used | (uint64_t{1} << i))) return true;
    }
    return false;
  }
};

void CheckSerialEquivalence(const History& h, const Digest& d,
                            const CheckOptions& opts, CheckReport* report) {
  // Committed transactions with at least one mutating operation, in commit
  // order (read-only commits have no effect and constrain nothing).
  std::vector<const TxnRecord*> committed;
  for (const auto& [id, t] : d.txns) {
    if (!t.commit.has_value()) continue;
    bool mutates = false;
    for (const auto& [cell, c] : t.cells) {
      if (c.cls != OpClass::kRead) mutates = true;
    }
    if (mutates) committed.push_back(&t);
  }
  std::sort(committed.begin(), committed.end(),
            [](const TxnRecord* a, const TxnRecord* b) {
              return *a->commit < *b->commit;
            });
  report->committed_txns = committed.size();
  // Small enough that a failed witness gets exhaustively confirmed below —
  // i.e. a "no serial order" verdict would be exact, not witness-only.
  report->exact_search =
      committed.size() <= opts.exact_search_limit && committed.size() < 63;

  // Commit order is the expected witness: with correct reconciliation, the
  // merged effects compose exactly like a serial run in commit order.
  std::optional<State> state = h.initial;
  for (const TxnRecord* t : committed) {
    state = ApplySerially(std::move(*state), *t);
    if (!state.has_value()) break;
  }
  report->orders_tried = 1;
  std::string diff;
  if (state.has_value() &&
      StatesEquivalent(*state, h.final_state, opts.epsilon, &diff) &&
      StatesEquivalent(h.final_state, *state, opts.epsilon, &diff)) {
    return;
  }

  if (report->exact_search) {
    SerialSearch search{committed, h.final_state, opts.epsilon, 0, {}};
    const bool found = search.Dfs(h.initial, 0);
    report->orders_tried += search.orders_tried;
    if (found) return;
    report->violations.push_back(Violation{
        "serial",
        StrFormat("no serial order of the %zu committed transactions "
                  "reproduces the final state (%zu orders tried; commit "
                  "order differs at %s)",
                  committed.size(), search.orders_tried,
                  diff.empty() ? "<undefined transition>" : diff.c_str())});
    return;
  }
  report->violations.push_back(Violation{
      "serial",
      StrFormat("commit-order serial replay of %zu committed transactions "
                "does not reproduce the final state (%s); too many for the "
                "exact search",
                committed.size(),
                diff.empty() ? "<undefined transition>" : diff.c_str())});
}

// --- Algorithm 9: the awake rule ------------------------------------------------

// Classes the sleeper holds/requests per object at its wake instant — the
// mirror of the footprint FindAwakeConflict evaluates: granted (applied)
// classes merged with the classes of its still-queued invocations, granted
// winning per member. Both Algorithm 9 rules apply to the whole footprint:
// a queued op is re-admitted at the wake, so a live incompatible holder or
// an incompatible commit newer than the sleep dooms it like a held grant.
std::map<ObjectId, std::map<MemberId, OpClass>> SleeperOps(
    const TxnRecord& t, size_t wake_index, size_t horizon) {
  std::map<ObjectId, std::map<MemberId, OpClass>> out;
  for (const auto& [cell, c] : t.cells) {
    if (c.first_apply >= wake_index) continue;
    const OpClass cls =
        (c.cls != OpClass::kRead && c.upgrade_index < wake_index)
            ? c.cls
            : OpClass::kRead;
    out[cell.object][cell.member] = cls;
  }
  for (const WaitRecord& w : t.waits) {
    if (w.begin >= wake_index) continue;
    const bool open = w.end >= wake_index || w.end == horizon;
    if (!open) continue;
    // emplace: a granted op on the same member takes over.
    out[w.cell.object].emplace(w.cell.member, w.cls);
  }
  return out;
}

void CheckAlgorithm9(const History& h, const Digest& d,
                     std::vector<Violation>* out) {
  const size_t horizon = h.events.size();
  for (const auto& [id, t] : d.txns) {
    for (const SleepWindow& w : t.sleeps) {
      if (!w.woke && !w.awake_abort) continue;
      const size_t wake = w.end;
      const auto own = SleeperOps(t, wake, horizon);
      // The retention horizon the GTM had pruned to by the wake instant.
      const TimePoint prune_horizon =
          d.last_commit_time[wake] - h.committed_retention;

      std::string conflict;  // First conflict found, rendered.
      for (const auto& [object, ops] : own) {
        if (!conflict.empty()) break;
        auto dit = h.deps.find(object);
        const semantics::LogicalDependencies deps =
            dit == h.deps.end() ? semantics::LogicalDependencies{}
                                : dit->second;
        auto incompatible = [&](MemberId om, OpClass oc, MemberId m,
                                OpClass c) {
          return deps.Dependent(om, m) && !semantics::Compatible(oc, c);
        };
        for (const auto& [uid, u] : d.txns) {
          if (uid == id || !conflict.empty()) continue;
          // Committed since the sleep: the staleness rule X_tc > A_t_sleep,
          // limited to entries the GTM still retained.
          if (u.commit.has_value() && *u.commit < wake &&
              u.commit_time > w.slept_at &&
              u.commit_time >= prune_horizon) {
            for (const auto& [cell, c] : u.cells) {
              if (cell.object != object) continue;
              for (const auto& [om, oc] : ops) {
                if (incompatible(om, oc, cell.member, c.cls)) {
                  conflict = StrFormat(
                      "txn %llu committed %s on %s at %.6f > sleep %.6f",
                      static_cast<unsigned long long>(uid),
                      OpClassName(c.cls), CellName(cell).c_str(),
                      u.commit_time, w.slept_at);
                }
              }
            }
          }
          if (!conflict.empty()) break;
          // Live non-sleeping holders (pending or committing) at the wake
          // block both held grants and the re-admission of queued ops.
          for (const auto& [cell, c] : u.cells) {
            if (cell.object != object) continue;
            for (const Span& s : ActiveSpans(u, c, horizon)) {
              if (s.begin >= wake || s.end <= wake) continue;
              for (const auto& [om, oc] : ops) {
                if (incompatible(om, oc, cell.member, s.cls)) {
                  conflict = StrFormat(
                      "txn %llu actively holds %s on %s across the wake",
                      static_cast<unsigned long long>(uid),
                      OpClassName(s.cls), CellName(cell).c_str());
                }
              }
            }
          }
        }
      }

      if (w.woke && !conflict.empty()) {
        out->push_back(Violation{
            "algorithm9",
            StrFormat("txn %llu awoke at event %zu despite a conflict: %s",
                      static_cast<unsigned long long>(id), wake,
                      conflict.c_str())});
      }
      if (w.awake_abort && conflict.empty()) {
        out->push_back(Violation{
            "algorithm9",
            StrFormat("txn %llu was awake-aborted at event %zu with no "
                      "incompatible commit after its sleep (%.6f) and no "
                      "live incompatible holder",
                      static_cast<unsigned long long>(id), wake,
                      w.slept_at)});
      }
    }
  }
}

}  // namespace

bool ValuesEquivalent(const Value& a, const Value& b, double epsilon) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_numeric() && b.is_numeric()) {
    const double x = a.ToDouble().value();
    const double y = b.ToDouble().value();
    if (x == y) return true;
    const double scale = std::max({std::fabs(x), std::fabs(y), 1.0});
    return std::fabs(x - y) <= epsilon * scale;
  }
  return a == b;
}

std::string CheckReport::ToString() const {
  std::string s = StrFormat(
      "check: %s (%zu committed txns, %zu serial orders tried%s)\n",
      ok() ? "OK" : "VIOLATIONS", committed_txns, orders_tried,
      exact_search ? ", exact search" : "");
  for (const Violation& v : violations) s += "  " + v.ToString() + "\n";
  return s;
}

CheckReport CheckHistory(const History& history, const CheckOptions& options) {
  CheckReport report;
  if (!history.complete) {
    report.violations.push_back(Violation{
        "incomplete-history",
        StrFormat("the trace ring dropped events (%zu retained); raise the "
                  "recorder capacity — every other check would be unsound",
                  history.events.size())});
    return report;
  }
  for (const TraceEvent& e : history.events) {
    if ((e.kind == TraceEventKind::kApply ||
         e.kind == TraceEventKind::kWait) &&
        !e.has_op) {
      report.violations.push_back(Violation{
          "incomplete-history",
          "an apply/wait event lacks its structured operation payload "
          "(recorded outside TraceLog::RecordOp?)"});
      return report;
    }
  }

  const Digest digest = DigestEvents(history);
  CheckDefinition1(history, digest, &report.violations);
  CheckReconciliation(history, digest, options.epsilon, &report.violations);
  CheckSerialEquivalence(history, digest, options, &report);
  CheckAlgorithm9(history, digest, &report.violations);
  if (report.violations.size() > options.max_violations) {
    report.violations.resize(options.max_violations);
    report.violations.push_back(
        Violation{"truncated", "further violations suppressed"});
  }
  return report;
}

}  // namespace preserial::check
