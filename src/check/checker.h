#ifndef PRESERIAL_CHECK_CHECKER_H_
#define PRESERIAL_CHECK_CHECKER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "check/history.h"
#include "storage/value.h"

namespace preserial::check {

// One rule breach found in a history. `rule` names the validator:
//   "incomplete-history"  the trace ring dropped events; checks are unsound
//   "definition1"         two concurrently active transactions held
//                         incompatible classes on dependent members
//   "reconciliation"      replaying commits through eqs. 1-2 predicts a
//                         different X_permanent than the GTM installed
//   "constraint"          an installed value broke a CHECK lower bound
//   "serial"              no serial order over the committed transactions
//                         reproduces the final state
//   "algorithm9"          a sleeper awoke despite an incompatible commit
//                         with X_tc > A_t_sleep (or was aborted without one)
struct Violation {
  std::string rule;
  std::string detail;
  std::string ToString() const { return rule + ": " + detail; }
};

struct CheckOptions {
  // Committed-transaction count up to which the serial-equivalence check
  // searches every order (memoized DFS); above it only the commit-order
  // witness is tried.
  size_t exact_search_limit = 10;
  // Relative tolerance for numeric equality (eq. 2 installs doubles where
  // a serial replay of int operands stays integral).
  double epsilon = 1e-9;
  // Hard cap on reported violations (a broken run breaks everywhere).
  size_t max_violations = 25;
};

struct CheckReport {
  std::vector<Violation> violations;
  size_t committed_txns = 0;  // Committed transactions examined.
  size_t orders_tried = 0;    // Serial orders evaluated by the search.
  // True when the committed set was within exact_search_limit, i.e. a
  // serial-equivalence failure would have been confirmed by the full DFS
  // rather than by the commit-order witness alone.
  bool exact_search = false;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

// True when the two values are semantically equal: both null, exact match
// for bool/string, numerics within relative `epsilon` (int 40 == 40.0).
bool ValuesEquivalent(const storage::Value& a, const storage::Value& b,
                      double epsilon);

// Validates a recorded history against the paper's correctness claims:
// Definition 1 admission discipline, reconciliation equivalence (eqs. 1-2,
// CHECK bounds included), existence of an equivalent serial order, and the
// Algorithm 9 awake rule. Empty violations == the history is semantically
// serializable.
CheckReport CheckHistory(const History& history,
                         const CheckOptions& options = {});

}  // namespace preserial::check

#endif  // PRESERIAL_CHECK_CHECKER_H_
