#ifndef PRESERIAL_CHECK_EXPLORER_H_
#define PRESERIAL_CHECK_EXPLORER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/checker.h"
#include "check/history.h"
#include "check/seed.h"
#include "common/random.h"

namespace preserial::check {

// The stream of scheduling decisions a scenario driver consumes. Choose(n)
// yields a value in [0, n) and records the *effective* value, so the
// recorded vector replayed through ReplayDecisionSource reproduces the
// schedule bit-for-bit — the foundation for shrinking. Forced choices
// (n <= 1) are neither recorded nor consumed: they carry no information,
// and how many of them occur can itself depend on earlier decisions, so
// recording them would misalign replay.
class DecisionSource {
 public:
  virtual ~DecisionSource() = default;

  // Uniform decision in [0, n); n must be >= 1.
  uint32_t Choose(uint32_t n) {
    if (n <= 1) return 0;
    const uint32_t v = Next(n);
    recorded_.push_back(v);
    return v;
  }

  const std::vector<uint32_t>& recorded() const { return recorded_; }

 protected:
  virtual uint32_t Next(uint32_t n) = 0;

 private:
  std::vector<uint32_t> recorded_;
};

// Seed-driven random walk.
class RngDecisionSource : public DecisionSource {
 public:
  explicit RngDecisionSource(uint64_t seed) : rng_(seed) {}

 protected:
  uint32_t Next(uint32_t n) override {
    return static_cast<uint32_t>(rng_.NextBounded(n));
  }

 private:
  Rng rng_;
};

// Replays a pinned decision vector; positions past the end yield 0, so a
// truncated (shrunk) vector still drives a complete, deterministic run.
class ReplayDecisionSource : public DecisionSource {
 public:
  explicit ReplayDecisionSource(std::vector<uint32_t> choices)
      : choices_(std::move(choices)) {}

 protected:
  uint32_t Next(uint32_t n) override {
    const uint32_t raw = pos_ < choices_.size() ? choices_[pos_] : 0;
    ++pos_;
    return raw % n;
  }

 private:
  std::vector<uint32_t> choices_;
  size_t pos_ = 0;
};

// Everything one executed schedule produced: the recorded histories (one
// per serialization domain — a sharded run yields one per shard), the
// checker's verdict on each, and the decision vector that reproduces it.
struct ScheduleOutcome {
  std::vector<History> histories;
  std::vector<CheckReport> reports;
  std::vector<uint32_t> choices;

  bool ok() const {
    for (const CheckReport& r : reports) {
      if (!r.ok()) return false;
    }
    return true;
  }
  // First failing report's text, or "ok".
  std::string Describe() const;
};

// Executes one schedule: builds the scenario named by `seed.scenario` from
// scratch (deterministic — ManualClock, no threads), drives it with the
// seed's decision stream (pinned `choices` if non-empty, else a random walk
// from `seed.seed`), quiesces every transaction, and runs CheckHistory on
// each recorded history. Only explorer scenarios (single-node, sharded-2pc,
// failover) are supported; the fuzz kinds replay inside their own test
// harness.
ScheduleOutcome RunSchedule(const ScheduleSeed& seed,
                            const CheckOptions& check = {});

// Minimizes the decision vector of a failing schedule while preserving the
// failure. Greedy fixpoint of three reductions — truncate the tail, delete
// chunks (halving chunk sizes), zero entries — bounded by `budget` schedule
// executions. Returns a seed whose pinned choices still fail.
struct ShrinkResult {
  ScheduleSeed seed;   // scenario/mutation copied from the input.
  size_t runs = 0;     // Schedules executed while shrinking.
};
ShrinkResult ShrinkSchedule(const ScheduleSeed& failing,
                            const CheckOptions& check = {},
                            size_t budget = 400);

struct ExplorationResult {
  size_t schedules = 0;  // Schedules executed (and checked).
  size_t failures = 0;   // Schedules with at least one violation.
  // First failing schedule, shrunk to a minimal pinned-choice seed.
  std::optional<ScheduleSeed> first_failure;
  std::string first_failure_report;
};

// Systematic schedule exploration: every explored schedule runs the full
// checker; any failure is shrunk to a replayable counterexample.
class ScheduleExplorer {
 public:
  explicit ScheduleExplorer(ScheduleSeed base, CheckOptions check = {})
      : base_(std::move(base)), check_(check) {}

  // Seed-driven random walks: schedules seeded base.seed + i for
  // i in [0, schedules).
  ExplorationResult ExploreRandom(size_t schedules);

  // Bounded exhaustive enumeration: every decision vector in
  // {0..fanout-1}^depth, later positions padded with 0 by replay. Covers
  // fanout^depth schedules — keep depth small (the prefix decisions steer
  // the most divergent part of a schedule).
  ExplorationResult ExploreExhaustive(size_t depth, uint32_t fanout);

 private:
  // Runs + checks one schedule; folds the outcome into `result` (shrinking
  // on first failure).
  void Record(const ScheduleSeed& seed, ExplorationResult* result);

  ScheduleSeed base_;
  CheckOptions check_;
};

}  // namespace preserial::check

#endif  // PRESERIAL_CHECK_EXPLORER_H_
