#include "check/history.h"

#include <utility>

#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/strings.h"
#include "replica/replica.h"

namespace preserial::check {

std::string History::ToString() const {
  std::string out = StrFormat(
      "history: %zu events, %zu cells, complete=%s\n", events.size(),
      initial.size(), complete ? "true" : "false");
  for (const gtm::TraceEvent& e : events) {
    out += "  " + e.ToString() + "\n";
  }
  return out;
}

std::map<gtm::Cell, storage::Value> SnapshotPermanent(const gtm::Gtm& gtm) {
  std::map<gtm::Cell, storage::Value> out;
  for (const gtm::ObjectId& id : gtm.ObjectIds()) {
    Result<const gtm::ObjectState*> obj = gtm.GetObject(id);
    PRESERIAL_CHECK(obj.ok());
    const gtm::ObjectState* o = obj.value();
    for (size_t m = 0; m < o->num_members(); ++m) {
      out.emplace(gtm::Cell{id, m}, o->permanent[m]);
    }
  }
  return out;
}

void HistoryRecorder::Attach(gtm::Gtm* gtm, size_t trace_capacity) {
  PRESERIAL_CHECK(gtm_ == nullptr);
  gtm_ = gtm;
  history_ = History{};
  history_.initial = SnapshotPermanent(*gtm);
  history_.committed_retention = gtm->options().committed_retention;
  for (const gtm::ObjectId& id : gtm->ObjectIds()) {
    Result<const gtm::ObjectState*> obj = gtm->GetObject(id);
    PRESERIAL_CHECK(obj.ok());
    history_.deps.emplace(id, obj.value()->deps);
  }
  // Events recorded before this attach (e.g. setup traffic) are not part of
  // the history; remember the baseline so Finish() can tell whether *our*
  // window stayed inside the ring.
  gtm->trace()->Enable(trace_capacity);
  base_recorded_ = gtm->trace()->total_recorded();
}

History HistoryRecorder::Finish() {
  PRESERIAL_CHECK(gtm_ != nullptr);
  const gtm::TraceLog& log = *gtm_->trace();
  history_.events = log.Snapshot();
  // Enable() cleared the ring, so everything recorded since attach must
  // still be resident for the history to be complete.
  history_.complete =
      log.total_recorded() - base_recorded_ ==
      static_cast<int64_t>(history_.events.size());
  history_.final_state = SnapshotPermanent(*gtm_);
  gtm_ = nullptr;
  return std::move(history_);
}

void ClusterHistoryRecorder::Attach(cluster::GtmCluster* cluster,
                                    size_t trace_capacity) {
  recorders_.clear();
  recorders_.resize(cluster->num_shards());
  for (size_t s = 0; s < cluster->num_shards(); ++s) {
    recorders_[s].Attach(cluster->shard(s), trace_capacity);
  }
}

std::vector<History> ClusterHistoryRecorder::Finish() {
  std::vector<History> out;
  out.reserve(recorders_.size());
  for (HistoryRecorder& r : recorders_) out.push_back(r.Finish());
  return out;
}

void ReplicaHistoryRecorder::Attach(replica::ReplicatedGtm* replicated,
                                    size_t trace_capacity) {
  PRESERIAL_CHECK(replicated_ == nullptr);
  replicated_ = replicated;
  history_ = History{};
  gtm::Gtm* primary = replicated->primary_gtm();
  history_.initial = SnapshotPermanent(*primary);
  history_.committed_retention = primary->options().committed_retention;
  for (const gtm::ObjectId& id : primary->ObjectIds()) {
    Result<const gtm::ObjectState*> obj = primary->GetObject(id);
    PRESERIAL_CHECK(obj.ok());
    history_.deps.emplace(id, obj.value()->deps);
  }
  // Every node records: a later-promoted backup replays the shipped log
  // into its own trace, so whichever node ends up primary holds a full
  // timeline of the surviving execution.
  for (size_t i = 0; i < replicated->num_nodes(); ++i) {
    replicated->node(i)->gtm()->trace()->Enable(trace_capacity);
  }
}

History ReplicaHistoryRecorder::Finish() {
  PRESERIAL_CHECK(replicated_ != nullptr);
  gtm::Gtm* primary = replicated_->primary_gtm();
  const gtm::TraceLog& log = *primary->trace();
  history_.events = log.Snapshot();
  history_.complete = log.total_recorded() ==
                      static_cast<int64_t>(history_.events.size());
  history_.final_state = SnapshotPermanent(*primary);
  replicated_ = nullptr;
  return std::move(history_);
}

}  // namespace preserial::check
