#ifndef PRESERIAL_SIM_EVENT_QUEUE_H_
#define PRESERIAL_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/clock.h"

namespace preserial::sim {

using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

// Pending-event set of a discrete-event simulation. A hand-rolled binary
// min-heap ordered by (time, sequence) — the sequence number makes ties
// FIFO-stable, which matters for reproducing the paper's arrival-order
// semantics (transactions are labelled by arrival order lambda).
//
// Cancellation is lazy: Cancel() records the id and Pop() skips dead
// entries, so both operations stay O(log n) amortized.
class EventQueue {
 public:
  struct Entry {
    TimePoint time = 0;
    EventId id = kInvalidEventId;
    std::function<void()> action;
  };

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `action` at absolute time `time`. Returns a handle usable with
  // Cancel().
  EventId Push(TimePoint time, std::function<void()> action);

  // Cancels a pending event; returns false if it already fired, was already
  // cancelled, or never existed.
  bool Cancel(EventId id);

  // True when no live events remain.
  bool Empty() const { return live_count_ == 0; }
  size_t Size() const { return live_count_; }

  // Time of the earliest live event; undefined when Empty().
  TimePoint PeekTime();

  // Removes and returns the earliest live event; undefined when Empty().
  Entry Pop();

  // Number of live events sharing the earliest timestamp; 0 when Empty().
  // O(n) — meant for schedule-exploration harnesses, not hot loops.
  size_t TiedHeadCount();

  // Removes and returns the k-th (in FIFO order, k < TiedHeadCount()) of
  // the live events tied at the earliest timestamp. PopTiedAt(0) == Pop().
  Entry PopTiedAt(size_t k);

 private:
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  void DropDeadHead();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
  size_t live_count_ = 0;
};

}  // namespace preserial::sim

#endif  // PRESERIAL_SIM_EVENT_QUEUE_H_
