#include "sim/simulator.h"

#include <cassert>

#include "common/logging.h"

namespace preserial::sim {

EventId Simulator::After(Duration delay, std::function<void()> action) {
  PRESERIAL_CHECK(delay >= 0) << "negative delay " << delay;
  return queue_.Push(clock_.Now() + delay, std::move(action));
}

EventId Simulator::At(TimePoint when, std::function<void()> action) {
  PRESERIAL_CHECK(when >= clock_.Now())
      << "scheduling into the past: " << when << " < " << clock_.Now();
  return queue_.Push(when, std::move(action));
}

bool Simulator::Step() {
  if (queue_.Empty()) return false;
  EventQueue::Entry e;
  size_t ties;
  if (tie_breaker_ && (ties = queue_.TiedHeadCount()) > 1) {
    const size_t pick = tie_breaker_(ties);
    PRESERIAL_CHECK(pick < ties)
        << "tie breaker returned " << pick << " of " << ties;
    e = queue_.PopTiedAt(pick);
  } else {
    e = queue_.Pop();
  }
  clock_.Set(e.time);
  ++events_executed_;
  e.action();
  return true;
}

uint64_t Simulator::Run(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && Step()) ++n;
  return n;
}

uint64_t Simulator::RunUntil(TimePoint until) {
  uint64_t n = 0;
  while (!queue_.Empty() && queue_.PeekTime() <= until) {
    Step();
    ++n;
  }
  if (clock_.Now() < until) clock_.Set(until);
  return n;
}

}  // namespace preserial::sim
