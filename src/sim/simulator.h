#ifndef PRESERIAL_SIM_SIMULATOR_H_
#define PRESERIAL_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>

#include "common/clock.h"
#include "sim/event_queue.h"

namespace preserial::sim {

// Sequential discrete-event simulator. Drives a virtual clock forward from
// event to event; everything the GTM experiments need (client arrivals,
// disconnections, reconnections, lock-wait timeouts) is expressed as
// scheduled callbacks.
//
// The simulator is single-threaded by design: the paper's middleware is an
// event-based controller, and a deterministic executor makes every figure
// bit-for-bit reproducible.
class Simulator {
 public:
  explicit Simulator(TimePoint start = 0.0) : clock_(start) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // The virtual clock, shareable with components that take a Clock*.
  ManualClock* clock() { return &clock_; }
  TimePoint Now() const { return clock_.Now(); }

  // Schedules `action` `delay` seconds from now (delay >= 0; a zero delay
  // runs after currently pending events at the same timestamp, FIFO).
  EventId After(Duration delay, std::function<void()> action);

  // Schedules `action` at absolute virtual time `when` (>= Now()).
  EventId At(TimePoint when, std::function<void()> action);

  // Cancels a pending event. Safe to call with stale ids.
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Installs a tie-break hook consulted when several events share the next
  // timestamp: called with the tie count n (>= 2), must return an index in
  // [0, n) selecting which fires first (FIFO order indexing). Unset (the
  // default) keeps strict FIFO. Lets schedule-exploration harnesses
  // perturb same-time interleavings without changing the workload.
  void SetTieBreaker(std::function<size_t(size_t)> tie_breaker) {
    tie_breaker_ = std::move(tie_breaker);
  }

  // Runs a single event; returns false if none remain.
  bool Step();

  // Runs until the queue drains or `max_events` fire. Returns events run.
  uint64_t Run(uint64_t max_events = UINT64_MAX);

  // Runs all events with time <= `until`, then sets the clock to `until`.
  uint64_t RunUntil(TimePoint until);

  bool Idle() const { return queue_.Empty(); }
  uint64_t events_executed() const { return events_executed_; }

 private:
  ManualClock clock_;
  EventQueue queue_;
  std::function<size_t(size_t)> tie_breaker_;
  uint64_t events_executed_ = 0;
};

}  // namespace preserial::sim

#endif  // PRESERIAL_SIM_SIMULATOR_H_
