#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace preserial::sim {

namespace {
// Heap order: earlier time first; FIFO (smaller id) among equal times.
bool Before(const EventQueue::Entry& a, const EventQueue::Entry& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.id < b.id;
}
}  // namespace

EventId EventQueue::Push(TimePoint time, std::function<void()> action) {
  Entry e;
  e.time = time;
  e.id = next_id_++;
  e.action = std::move(action);
  const EventId id = e.id;
  heap_.push_back(std::move(e));
  SiftUp(heap_.size() - 1);
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_id_) return false;
  // Only cancel events that are actually still in the heap.
  bool present = false;
  for (const Entry& e : heap_) {
    if (e.id == id) {
      present = true;
      break;
    }
  }
  if (!present || cancelled_.count(id) > 0) return false;
  cancelled_.insert(id);
  assert(live_count_ > 0);
  --live_count_;
  return true;
}

TimePoint EventQueue::PeekTime() {
  DropDeadHead();
  assert(!heap_.empty());
  return heap_.front().time;
}

EventQueue::Entry EventQueue::Pop() {
  DropDeadHead();
  assert(!heap_.empty());
  Entry top = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
  assert(live_count_ > 0);
  --live_count_;
  return top;
}

size_t EventQueue::TiedHeadCount() {
  if (Empty()) return 0;
  const TimePoint t = PeekTime();
  size_t n = 0;
  for (const Entry& e : heap_) {
    if (e.time == t && cancelled_.count(e.id) == 0) ++n;
  }
  return n;
}

EventQueue::Entry EventQueue::PopTiedAt(size_t k) {
  DropDeadHead();
  assert(!heap_.empty());
  const TimePoint t = heap_.front().time;
  // FIFO among ties is ascending id; find the k-th smallest tied id.
  std::vector<EventId> tied;
  for (const Entry& e : heap_) {
    if (e.time == t && cancelled_.count(e.id) == 0) tied.push_back(e.id);
  }
  std::sort(tied.begin(), tied.end());
  assert(k < tied.size());
  const EventId target = tied[k];
  for (size_t i = 0; i < heap_.size(); ++i) {
    if (heap_[i].id != target) continue;
    Entry out = std::move(heap_[i]);
    heap_[i] = std::move(heap_.back());
    heap_.pop_back();
    if (i < heap_.size()) {
      SiftDown(i);
      SiftUp(i);
    }
    assert(live_count_ > 0);
    --live_count_;
    return out;
  }
  assert(false && "tied event vanished from the heap");
  return {};
}

void EventQueue::DropDeadHead() {
  while (!heap_.empty() && cancelled_.count(heap_.front().id) > 0) {
    cancelled_.erase(heap_.front().id);
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0);
  }
}

void EventQueue::SiftUp(size_t i) {
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (!Before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    size_t smallest = i;
    const size_t left = 2 * i + 1;
    const size_t right = 2 * i + 2;
    if (left < n && Before(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && Before(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace preserial::sim
