#include "sim/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace preserial::sim {

ZipfIndexDist::ZipfIndexDist(size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
}

size_t ZipfIndexDist::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace preserial::sim
