#ifndef PRESERIAL_SIM_DISTRIBUTIONS_H_
#define PRESERIAL_SIM_DISTRIBUTIONS_H_

#include <memory>
#include <vector>

#include "common/random.h"

namespace preserial::sim {

// Abstract scalar distribution used by workload and disconnection models.
// All implementations are deterministic given the caller's Rng.
class Distribution {
 public:
  virtual ~Distribution() = default;
  virtual double Sample(Rng& rng) const = 0;
  // Analytic mean; used by models and sanity checks.
  virtual double Mean() const = 0;
};

// Always the same value (the paper's fixed 0.5 s interarrival time).
class ConstantDist : public Distribution {
 public:
  explicit ConstantDist(double value) : value_(value) {}
  double Sample(Rng&) const override { return value_; }
  double Mean() const override { return value_; }

 private:
  double value_;
};

// Uniform on [lo, hi).
class UniformDist : public Distribution {
 public:
  UniformDist(double lo, double hi) : lo_(lo), hi_(hi) {}
  double Sample(Rng& rng) const override {
    return lo_ + (hi_ - lo_) * rng.NextDouble();
  }
  double Mean() const override { return (lo_ + hi_) / 2.0; }

 private:
  double lo_, hi_;
};

// Exponential with the given mean (Poisson arrivals, disconnection
// durations).
class ExponentialDist : public Distribution {
 public:
  explicit ExponentialDist(double mean) : mean_(mean) {}
  double Sample(Rng& rng) const override { return rng.NextExponential(mean_); }
  double Mean() const override { return mean_; }

 private:
  double mean_;
};

// Integer sampler over [0, n) — used to pick which database object a
// transaction touches (the paper's gamma distribution over objects).
class IndexDistribution {
 public:
  virtual ~IndexDistribution() = default;
  virtual size_t Sample(Rng& rng) const = 0;
  virtual size_t size() const = 0;
};

// Uniform over [0, n) — gamma_j = 1/n for all j.
class UniformIndexDist : public IndexDistribution {
 public:
  explicit UniformIndexDist(size_t n) : n_(n) {}
  size_t Sample(Rng& rng) const override { return rng.NextBounded(n_); }
  size_t size() const override { return n_; }

 private:
  size_t n_;
};

// Explicit weights (the paper's per-class gamma_j^i probabilities).
class WeightedIndexDist : public IndexDistribution {
 public:
  explicit WeightedIndexDist(std::vector<double> weights)
      : weights_(std::move(weights)) {}
  size_t Sample(Rng& rng) const override { return rng.NextDiscrete(weights_); }
  size_t size() const override { return weights_.size(); }

 private:
  std::vector<double> weights_;
};

// Zipf(s) over [0, n): rank-skewed object popularity, used by the
// contention-sweep ablations. Precomputes the CDF once.
class ZipfIndexDist : public IndexDistribution {
 public:
  ZipfIndexDist(size_t n, double s);
  size_t Sample(Rng& rng) const override;
  size_t size() const override { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace preserial::sim

#endif  // PRESERIAL_SIM_DISTRIBUTIONS_H_
