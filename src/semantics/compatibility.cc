#include "semantics/compatibility.h"

#include "common/strings.h"

namespace preserial::semantics {

bool Compatible(OpClass a, OpClass b) {
  // Insert/delete share with nothing (strongest row wins).
  if (a == OpClass::kInsert || a == OpClass::kDelete ||
      b == OpClass::kInsert || b == OpClass::kDelete) {
    return false;
  }
  // Reads share with every surviving class, including each other.
  if (a == OpClass::kRead || b == OpClass::kRead) return true;
  // Updates share only within their own dual class; assignment shares with
  // nothing but reads.
  if (a == OpClass::kUpdateAddSub && b == OpClass::kUpdateAddSub) return true;
  if (a == OpClass::kUpdateMulDiv && b == OpClass::kUpdateMulDiv) return true;
  return false;
}

std::string CompatibilityTableString() {
  static constexpr OpClass kAll[] = {
      OpClass::kRead,         OpClass::kInsert,       OpClass::kDelete,
      OpClass::kUpdateAssign, OpClass::kUpdateAddSub, OpClass::kUpdateMulDiv,
  };
  constexpr size_t kW = 16;
  std::string out = PadRight("", kW);
  for (OpClass c : kAll) out += PadRight(OpClassName(c), kW);
  out += "\n";
  for (OpClass row : kAll) {
    out += PadRight(OpClassName(row), kW);
    for (OpClass col : kAll) {
      out += PadRight(Compatible(row, col) ? "yes" : "-", kW);
    }
    out += "\n";
  }
  return out;
}

void LogicalDependencies::EnsureSize(MemberId m) const {
  while (parent_.size() <= m) parent_.push_back(parent_.size());
}

MemberId LogicalDependencies::Find(MemberId m) const {
  EnsureSize(m);
  // Path halving.
  while (parent_[m] != m) {
    parent_[m] = parent_[parent_[m]];
    m = parent_[m];
  }
  return m;
}

void LogicalDependencies::AddDependency(MemberId a, MemberId b) {
  const MemberId ra = Find(a);
  const MemberId rb = Find(b);
  if (ra != rb) parent_[ra] = rb;
}

bool LogicalDependencies::Dependent(MemberId a, MemberId b) const {
  if (a == b) return true;
  return Find(a) == Find(b);
}

std::vector<std::pair<MemberId, MemberId>> LogicalDependencies::CanonicalPairs()
    const {
  std::vector<std::pair<MemberId, MemberId>> pairs;
  for (MemberId m = 0; m < parent_.size(); ++m) {
    const MemberId root = Find(m);
    if (root != m) pairs.emplace_back(m, root);
  }
  return pairs;
}

bool CompatibleOnMembers(MemberId member_a, OpClass a, MemberId member_b,
                         OpClass b, const LogicalDependencies& deps) {
  if (!deps.Dependent(member_a, member_b)) return true;
  return Compatible(a, b);
}

}  // namespace preserial::semantics
