#include "semantics/reconcile.h"

namespace preserial::semantics {

using storage::Value;

Result<Value> ReconcileAddSub(const Value& read, const Value& temp,
                              const Value& permanent) {
  PRESERIAL_ASSIGN_OR_RETURN(Value sum, Value::Add(temp, permanent));
  return Value::Sub(sum, read);
}

Result<Value> ReconcileMulDiv(const Value& read, const Value& temp,
                              const Value& permanent) {
  if (!read.is_numeric() || !temp.is_numeric() || !permanent.is_numeric()) {
    return Status::InvalidArgument("mul/div reconciliation needs numerics");
  }
  const double r = read.ToDouble().value();
  if (r == 0.0) {
    return Status::InvalidArgument(
        "mul/div reconciliation undefined for X_read = 0");
  }
  const double factor = temp.ToDouble().value() / r;
  return Value::Double(factor * permanent.ToDouble().value());
}

Result<Value> Reconcile(OpClass cls, const Value& read, const Value& temp,
                        const Value& permanent) {
  switch (cls) {
    case OpClass::kRead:
      return permanent;
    case OpClass::kInsert:
    case OpClass::kUpdateAssign:
      return temp;
    case OpClass::kDelete:
      return Value::Null();
    case OpClass::kUpdateAddSub:
      return ReconcileAddSub(read, temp, permanent);
    case OpClass::kUpdateMulDiv:
      return ReconcileMulDiv(read, temp, permanent);
  }
  return Status::Internal("unreachable op class");
}

}  // namespace preserial::semantics
