#include "semantics/op_class.h"

namespace preserial::semantics {

const char* OpClassName(OpClass c) {
  switch (c) {
    case OpClass::kRead:
      return "read";
    case OpClass::kInsert:
      return "insert";
    case OpClass::kDelete:
      return "delete";
    case OpClass::kUpdateAssign:
      return "update-assign";
    case OpClass::kUpdateAddSub:
      return "update-add/sub";
    case OpClass::kUpdateMulDiv:
      return "update-mul/div";
  }
  return "?";
}

bool IsUpdate(OpClass c) {
  return c == OpClass::kUpdateAssign || c == OpClass::kUpdateAddSub ||
         c == OpClass::kUpdateMulDiv;
}

bool IsMutation(OpClass c) { return c != OpClass::kRead; }

}  // namespace preserial::semantics
