#include "semantics/operation.h"

#include "common/strings.h"

namespace preserial::semantics {

using storage::Value;

Status Operation::Validate() const {
  switch (cls) {
    case OpClass::kRead:
    case OpClass::kDelete:
      return Status::Ok();
    case OpClass::kInsert:
    case OpClass::kUpdateAssign:
      if (operand.is_null()) {
        return Status::InvalidArgument("operand required for " +
                                       std::string(OpClassName(cls)));
      }
      return Status::Ok();
    case OpClass::kUpdateAddSub:
      if (!operand.is_numeric()) {
        return Status::InvalidArgument("add/sub operand must be numeric");
      }
      return Status::Ok();
    case OpClass::kUpdateMulDiv: {
      if (!operand.is_numeric()) {
        return Status::InvalidArgument("mul/div operand must be numeric");
      }
      const double c = operand.ToDouble().value();
      if (c == 0.0) {
        return Status::InvalidArgument("mul/div operand must be non-zero");
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable op class");
}

std::string Operation::ToString() const {
  switch (cls) {
    case OpClass::kRead:
      return "read";
    case OpClass::kDelete:
      return "delete";
    case OpClass::kInsert:
      return "insert(" + operand.ToString() + ")";
    case OpClass::kUpdateAssign:
      return "assign(" + operand.ToString() + ")";
    case OpClass::kUpdateAddSub:
      return (inverse ? "sub(" : "add(") + operand.ToString() + ")";
    case OpClass::kUpdateMulDiv:
      return (inverse ? "div(" : "mul(") + operand.ToString() + ")";
  }
  return "?";
}

}  // namespace preserial::semantics
