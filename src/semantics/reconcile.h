#ifndef PRESERIAL_SEMANTICS_RECONCILE_H_
#define PRESERIAL_SEMANTICS_RECONCILE_H_

#include "common/status.h"
#include "semantics/op_class.h"
#include "storage/value.h"

namespace preserial::semantics {

// Reconciliation algorithms (Definition 1, condition 3): given what a
// transaction read (X_read), the value of its private virtual copy at
// commit request (A_temp), and the current committed value (X_permanent,
// which compatible peers may have advanced in the meantime), compute the
// value to install (X_new).
//
// Paper eq. (1), add/sub class:
//     X_new = A_temp + X_permanent - X_read
// i.e. re-apply this transaction's net delta on top of whatever the peers
// committed. Exact for int64 and double.
Result<storage::Value> ReconcileAddSub(const storage::Value& read,
                                       const storage::Value& temp,
                                       const storage::Value& permanent);

// Paper eq. (2), mul/div class:
//     X_new = (A_temp / X_read) * X_permanent
// re-apply this transaction's net factor. Computed in double (integer
// division does not commute); X_read must be non-zero.
Result<storage::Value> ReconcileMulDiv(const storage::Value& read,
                                       const storage::Value& temp,
                                       const storage::Value& permanent);

// Dispatch by operation class:
//   read           -> X_permanent (no change)
//   insert, assign -> A_temp      (holder is exclusive, so temp is final)
//   delete         -> Null
//   add/sub        -> eq. (1)
//   mul/div        -> eq. (2)
Result<storage::Value> Reconcile(OpClass cls, const storage::Value& read,
                                 const storage::Value& temp,
                                 const storage::Value& permanent);

}  // namespace preserial::semantics

#endif  // PRESERIAL_SEMANTICS_RECONCILE_H_
