#ifndef PRESERIAL_SEMANTICS_COMMUTATIVITY_H_
#define PRESERIAL_SEMANTICS_COMMUTATIVITY_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "semantics/operation.h"
#include "storage/value.h"

namespace preserial::semantics {

// The serial specification S(X) of an object data member as a state
// machine: states are Values (Null = "object absent"), and the transition
// function T(s, op) yields the next state or an error (the paper's bottom).
//
//   absent + insert(v)  -> v          present + insert   -> bottom
//   absent + <other>    -> bottom     present + delete   -> absent
//                                     present + read     -> unchanged
//                                     present + assign c -> c
//                                     present + add c    -> s + c
//                                     present + mul c    -> s * c (c != 0)
Result<storage::Value> Transition(const storage::Value& state,
                                  const Operation& op);

// Condition (2) of Definition 1 at one probe state: both application orders
// defined and equal. (State equality only — Weihl's forward commutativity
// on the machine; return values are private to each transaction's virtual
// copy in the paper's model.)
bool CommutesAt(const storage::Value& state, const Operation& a,
                const Operation& b);

// Checks commutativity across a set of probe states; true iff it holds at
// every state where at least one order is defined.
bool ForwardCommutes(const Operation& a, const Operation& b,
                     const std::vector<storage::Value>& probe_states);

// Default numeric probe states (a spread of int and double values,
// including negatives and zero, plus Null for the insert/delete cases).
std::vector<storage::Value> DefaultProbeStates();

// Randomized sample operations of a class (operands drawn from rng).
Operation SampleOperation(OpClass cls, Rng& rng);

// Machine-checks Table I: for every pair of classes, samples operations and
// verifies that Compatible(a, b) == ForwardCommutes over the probe states
// (compatible pairs must always commute; incompatible pairs must fail for
// at least one sample). Returns kInternal with details on any mismatch.
Status VerifyCompatibilityTable(Rng& rng, int samples_per_pair = 64);

}  // namespace preserial::semantics

#endif  // PRESERIAL_SEMANTICS_COMMUTATIVITY_H_
