#ifndef PRESERIAL_SEMANTICS_COMPATIBILITY_H_
#define PRESERIAL_SEMANTICS_COMPATIBILITY_H_

#include <string>
#include <utility>
#include <vector>

#include "semantics/op_class.h"
#include "semantics/operation.h"

namespace preserial::semantics {

// Class-level compatibility — the paper's Table I:
//
//   read            <-> read, assign, add/sub, mul/div
//   insert / delete <-> nothing
//   update-assign   <-> read
//   update-add/sub  <-> update-add/sub, read
//   update-mul/div  <-> update-mul/div, read
//
// The relation is symmetric. (The table's "read: all classes" row is
// qualified by the stricter insert/delete row: reads do not share with
// object creation/removal, which the machine-checked commutativity test in
// commutativity.h confirms is the only safe reading.)
bool Compatible(OpClass a, OpClass b);

// Renders Table I as fixed-width text (used by bench_table1).
std::string CompatibilityTableString();

// Union-find over data members expressing the paper's "logical dependence"
// relaxation: operations on members in different groups never conflict;
// operations on the same member or on logically dependent members (e.g.
// quantity and price) conflict per the class matrix.
class LogicalDependencies {
 public:
  // Declares members a and b logically dependent (merges their groups).
  void AddDependency(MemberId a, MemberId b);

  // Reflexive, symmetric, transitive.
  bool Dependent(MemberId a, MemberId b) const;

  // (member, group-root) pairs for every member that is not its own
  // singleton group. Feeding each pair back through AddDependency on an
  // empty instance reconstructs the same relation — this is the wire form
  // the replica log ships RegisterObject dependencies in.
  std::vector<std::pair<MemberId, MemberId>> CanonicalPairs() const;

 private:
  MemberId Find(MemberId m) const;
  // parent_[m] absent => m is its own singleton group.
  mutable std::vector<MemberId> parent_;
  void EnsureSize(MemberId m) const;
};

// Member-aware compatibility: compatible when the members are independent,
// otherwise the class matrix decides.
bool CompatibleOnMembers(MemberId member_a, OpClass a, MemberId member_b,
                         OpClass b, const LogicalDependencies& deps);

}  // namespace preserial::semantics

#endif  // PRESERIAL_SEMANTICS_COMPATIBILITY_H_
