#ifndef PRESERIAL_SEMANTICS_OPERATION_H_
#define PRESERIAL_SEMANTICS_OPERATION_H_

#include <string>

#include "common/status.h"
#include "semantics/op_class.h"
#include "storage/value.h"

namespace preserial::semantics {

// Index of a data member within a (structured) object.
using MemberId = size_t;

// One semantic operation on an object data member: a class plus its
// operand. `inverse` selects the second half of a dual class (subtract for
// add/sub, divide for mul/div); it is ignored for the other classes.
//
// An Operation is pure data: applying it to a state is Transition() in
// commutativity.h; merging its effect into the database at commit time is
// Reconcile() in reconcile.h.
struct Operation {
  OpClass cls = OpClass::kRead;
  storage::Value operand;  // Unused for kRead / kDelete.
  bool inverse = false;    // Subtract / divide instead of add / multiply.

  static Operation Read() { return Operation{OpClass::kRead, {}, false}; }
  static Operation Insert(storage::Value initial) {
    return Operation{OpClass::kInsert, std::move(initial), false};
  }
  static Operation Delete() { return Operation{OpClass::kDelete, {}, false}; }
  static Operation Assign(storage::Value v) {
    return Operation{OpClass::kUpdateAssign, std::move(v), false};
  }
  static Operation Add(storage::Value c) {
    return Operation{OpClass::kUpdateAddSub, std::move(c), false};
  }
  static Operation Sub(storage::Value c) {
    return Operation{OpClass::kUpdateAddSub, std::move(c), true};
  }
  static Operation Mul(storage::Value c) {
    return Operation{OpClass::kUpdateMulDiv, std::move(c), false};
  }
  static Operation Div(storage::Value c) {
    return Operation{OpClass::kUpdateMulDiv, std::move(c), true};
  }

  // Structural validity: operand present and sane for the class (e.g.
  // mul/div operand non-zero and numeric).
  Status Validate() const;

  // "add(3)", "assign('x')", "read", ...
  std::string ToString() const;
};

}  // namespace preserial::semantics

#endif  // PRESERIAL_SEMANTICS_OPERATION_H_
