#ifndef PRESERIAL_SEMANTICS_OP_CLASS_H_
#define PRESERIAL_SEMANTICS_OP_CLASS_H_

#include <cstddef>

namespace preserial::semantics {

// Operation classes of the paper's model (Sec. IV). The semantics of every
// operation a transaction performs is assumed a-priori known and summarized
// by its class; compatibility (Definition 1 / Table I) is decided at class
// granularity.
enum class OpClass {
  kRead = 0,           // SELECT of a data member.
  kInsert = 1,         // Object/member creation.
  kDelete = 2,         // Object/member removal.
  kUpdateAssign = 3,   // X = c
  kUpdateAddSub = 4,   // X = X + c  /  X = X - c
  kUpdateMulDiv = 5,   // X = X * c  /  X = X / c   (c != 0)
};

constexpr size_t kNumOpClasses = 6;

const char* OpClassName(OpClass c);

// True for the three update flavours.
bool IsUpdate(OpClass c);
// True for classes that can change object state (everything but kRead).
bool IsMutation(OpClass c);

}  // namespace preserial::semantics

#endif  // PRESERIAL_SEMANTICS_OP_CLASS_H_
