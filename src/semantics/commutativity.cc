#include "semantics/commutativity.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/strings.h"
#include "semantics/compatibility.h"

namespace preserial::semantics {

using storage::Value;

Result<Value> Transition(const Value& state, const Operation& op) {
  PRESERIAL_RETURN_IF_ERROR(op.Validate());
  if (state.is_null()) {
    if (op.cls == OpClass::kInsert) return op.operand;
    return Status::FailedPrecondition(
        "operation on absent object: " + op.ToString());
  }
  switch (op.cls) {
    case OpClass::kInsert:
      return Status::FailedPrecondition("insert on existing object");
    case OpClass::kDelete:
      return Value::Null();
    case OpClass::kRead:
      return state;
    case OpClass::kUpdateAssign:
      return op.operand;
    case OpClass::kUpdateAddSub:
      return op.inverse ? Value::Sub(state, op.operand)
                        : Value::Add(state, op.operand);
    case OpClass::kUpdateMulDiv: {
      // Computed in double: the class only commutes over the reals (integer
      // truncation breaks commutativity), which is the paper's assumption.
      PRESERIAL_ASSIGN_OR_RETURN(double s, state.ToDouble());
      const double c = op.operand.ToDouble().value();
      return Value::Double(op.inverse ? s / c : s * c);
    }
  }
  return Status::Internal("unreachable op class");
}

namespace {

// Value equality with a relative tolerance on numerics: mul/div chains pick
// up floating-point rounding that must not count as non-commutativity.
bool ApproxEqual(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) {
    const double x = a.ToDouble().value();
    const double y = b.ToDouble().value();
    const double scale = std::max({1.0, std::fabs(x), std::fabs(y)});
    return std::fabs(x - y) <= 1e-9 * scale;
  }
  return a == b;
}

}  // namespace

bool CommutesAt(const Value& state, const Operation& a, const Operation& b) {
  const Result<Value> sa = Transition(state, a);
  const Result<Value> sb = Transition(state, b);
  const Result<Value> ab =
      sa.ok() ? Transition(sa.value(), b)
              : Result<Value>(Status::FailedPrecondition("a undefined"));
  const Result<Value> ba =
      sb.ok() ? Transition(sb.value(), a)
              : Result<Value>(Status::FailedPrecondition("b undefined"));

  if (ab.ok() && ba.ok()) return ApproxEqual(ab.value(), ba.value());
  if (!ab.ok() && !ba.ok()) {
    // Both compositions undefined. If each operation was individually
    // defined here, the pair genuinely fails to compose (insert/insert,
    // delete/delete); otherwise the state is simply out of both domains.
    return !(sa.ok() && sb.ok());
  }
  // Exactly one order defined: order matters.
  return false;
}

bool ForwardCommutes(const Operation& a, const Operation& b,
                     const std::vector<Value>& probe_states) {
  for (const Value& s : probe_states) {
    if (!CommutesAt(s, a, b)) return false;
  }
  return true;
}

std::vector<Value> DefaultProbeStates() {
  return {
      Value::Null(),      Value::Int(-7),      Value::Int(-1),
      Value::Int(0),      Value::Int(1),       Value::Int(3),
      Value::Int(100),    Value::Double(-2.5), Value::Double(0.5),
      Value::Double(8.0),
  };
}

Operation SampleOperation(OpClass cls, Rng& rng) {
  const int64_t c = rng.NextInt(-20, 20);
  switch (cls) {
    case OpClass::kRead:
      return Operation::Read();
    case OpClass::kInsert:
      return Operation::Insert(Value::Int(c));
    case OpClass::kDelete:
      return Operation::Delete();
    case OpClass::kUpdateAssign:
      return Operation::Assign(Value::Int(c));
    case OpClass::kUpdateAddSub:
      return rng.NextBool(0.5) ? Operation::Add(Value::Int(c))
                               : Operation::Sub(Value::Int(c));
    case OpClass::kUpdateMulDiv: {
      int64_t f = c;
      if (f == 0) f = 2;
      return rng.NextBool(0.5) ? Operation::Mul(Value::Int(f))
                               : Operation::Div(Value::Int(f));
    }
  }
  return Operation::Read();
}

Status VerifyCompatibilityTable(Rng& rng, int samples_per_pair) {
  const std::vector<Value> states = DefaultProbeStates();
  static constexpr OpClass kAll[] = {
      OpClass::kRead,         OpClass::kInsert,       OpClass::kDelete,
      OpClass::kUpdateAssign, OpClass::kUpdateAddSub, OpClass::kUpdateMulDiv,
  };
  for (OpClass ca : kAll) {
    for (OpClass cb : kAll) {
      const bool declared = Compatible(ca, cb);
      bool found_violation = false;
      for (int i = 0; i < samples_per_pair; ++i) {
        const Operation a = SampleOperation(ca, rng);
        const Operation b = SampleOperation(cb, rng);
        const bool commutes = ForwardCommutes(a, b, states);
        if (declared && !commutes) {
          return Status::Internal(StrFormat(
              "Table I unsound: %s declared compatible with %s but %s / %s "
              "do not forward-commute",
              OpClassName(ca), OpClassName(cb), a.ToString().c_str(),
              b.ToString().c_str()));
        }
        if (!commutes) found_violation = true;
      }
      if (!declared && !found_violation) {
        return Status::Internal(StrFormat(
            "Table I conservative check failed: %s vs %s declared "
            "incompatible but no sampled pair violated commutativity",
            OpClassName(ca), OpClassName(cb)));
      }
    }
  }
  return Status::Ok();
}

}  // namespace preserial::semantics
