// Mobile-environment walkthrough: simulated wireless clients with frequent
// disconnections run the Sec. VI-B workload against the GTM and against
// strict 2PL, in virtual time. Shows the paper's two headline effects:
//   - sleeping transactions survive disconnections unless an incompatible
//     operation commits meanwhile, so the GTM aborts far fewer of them;
//   - compatible bookings share objects, so latency stays near the ideal
//     work time while 2PL serializes;
//   - over a lossy channel, retrying against the GTM's idempotent
//     endpoints and degrading unresponsive clients to Sleep keeps the
//     commit rate high where a naive client gives up.

#include <cstdio>

#include "workload/gtm_experiment.h"

using namespace preserial;
using workload::ChannelSpec;
using workload::ExperimentResult;
using workload::GtmExperimentSpec;
using workload::LossyExperimentResult;
using workload::TwoPlPolicy;

namespace {

void PrintResult(const char* label, const ExperimentResult& r) {
  std::printf(
      "%-12s committed %4lld / aborted %3lld (%.1f%%)  avg exec %.2fs  "
      "waits %lld\n",
      label, static_cast<long long>(r.run.committed),
      static_cast<long long>(r.run.aborted), r.run.AbortPercent(),
      r.run.AvgLatency(), static_cast<long long>(r.waits));
}

}  // namespace

int main() {
  GtmExperimentSpec spec;
  spec.num_txns = 600;
  spec.num_objects = 5;
  spec.alpha = 0.8;           // Mostly mobile bookings (subtractions).
  spec.beta = 0.25;           // One in four mobile clients disconnects.
  spec.interarrival = 0.5;    // Paper's arrival cadence.
  spec.work_time = 2.0;       // Seconds of user activity per transaction.
  spec.disconnect_mean = 15.0;  // Mean time away after a link drop.
  spec.seed = 7;

  std::puts("mobile booking workload: 600 txns, 5 objects, alpha=0.8, "
            "beta=0.25, 15s mean disconnection\n");

  const ExperimentResult g = RunGtmExperiment(spec);
  PrintResult("GTM", g);
  std::printf("             sleepers aborted at awake: %lld (only those hit "
              "by an incompatible commit)\n\n",
              static_cast<long long>(g.awake_aborts));

  TwoPlPolicy patient;  // 2PL that waits out disconnections: long locks.
  patient.lock_wait_timeout = 120.0;
  patient.idle_timeout = 120.0;
  const ExperimentResult t1 = RunTwoPlExperiment(spec, patient);
  PrintResult("2PL patient", t1);
  std::puts("             locks held across disconnections: waiters stall "
            "behind absent holders\n");

  TwoPlPolicy aggressive;  // 2PL that preventively aborts idle holders.
  aggressive.lock_wait_timeout = 20.0;
  aggressive.idle_timeout = 8.0;
  const ExperimentResult t2 = RunTwoPlExperiment(spec, aggressive);
  PrintResult("2PL killer", t2);
  std::puts("             disconnected holders preventively aborted: the "
            "paper's 'high rate of preventive aborts'\n");

  std::puts("The GTM avoids both pathologies: disconnected transactions "
            "sleep without blocking anyone,\nand awake+reconcile lets them "
            "finish unless a genuinely incompatible operation committed.");

  // Part two: the same workload when every request crosses a faulty
  // channel. Clients stamp requests with sequence numbers, retry silent
  // ones with backoff, and — in the paper's discipline — degrade to Sleep
  // when the channel stays dead, resuming with Awake later.
  GtmExperimentSpec lossy_spec = spec;
  lossy_spec.beta = 0.0;  // The channel itself now supplies the outages.

  ChannelSpec channel;
  channel.loss = 0.25;
  channel.duplicate = 0.1;
  channel.reorder = 0.1;
  channel.delay_mean = 0.05;
  channel.max_attempts = 3;
  channel.reconnect_delay = 5.0;

  std::puts("\nsame workload over a lossy channel: 25% loss, 10% "
            "duplication, 10% reordering\n");

  channel.degrade_to_sleep = true;
  const LossyExperimentResult sleepy = RunLossyGtmExperiment(lossy_spec,
                                                             channel);
  std::printf(
      "%-12s committed %4lld / aborted %3lld  retries %lld  "
      "degrades %lld  dedup hits %lld\n",
      "retry+sleep", static_cast<long long>(sleepy.run.committed),
      static_cast<long long>(sleepy.run.aborted),
      static_cast<long long>(sleepy.run.retries),
      static_cast<long long>(sleepy.run.degraded_to_sleep),
      static_cast<long long>(sleepy.duplicates_suppressed));

  channel.degrade_to_sleep = false;
  const LossyExperimentResult naive = RunLossyGtmExperiment(lossy_spec,
                                                            channel);
  std::printf(
      "%-12s committed %4lld / aborted %3lld  retries %lld\n",
      "naive abort", static_cast<long long>(naive.run.committed),
      static_cast<long long>(naive.run.aborted),
      static_cast<long long>(naive.run.retries));

  std::puts("\nEvery retried commit hit the GTM's reply cache instead of "
            "applying twice, and degraded\nclients finished after "
            "reconnecting — the naive client aborted them.");
  return 0;
}
