// Mobile-environment walkthrough: simulated wireless clients with frequent
// disconnections run the Sec. VI-B workload against the GTM and against
// strict 2PL, in virtual time. Shows the paper's two headline effects:
//   - sleeping transactions survive disconnections unless an incompatible
//     operation commits meanwhile, so the GTM aborts far fewer of them;
//   - compatible bookings share objects, so latency stays near the ideal
//     work time while 2PL serializes.

#include <cstdio>

#include "workload/gtm_experiment.h"

using namespace preserial;
using workload::ExperimentResult;
using workload::GtmExperimentSpec;
using workload::TwoPlPolicy;

namespace {

void PrintResult(const char* label, const ExperimentResult& r) {
  std::printf(
      "%-12s committed %4lld / aborted %3lld (%.1f%%)  avg exec %.2fs  "
      "waits %lld\n",
      label, static_cast<long long>(r.run.committed),
      static_cast<long long>(r.run.aborted), r.run.AbortPercent(),
      r.run.AvgLatency(), static_cast<long long>(r.waits));
}

}  // namespace

int main() {
  GtmExperimentSpec spec;
  spec.num_txns = 600;
  spec.num_objects = 5;
  spec.alpha = 0.8;           // Mostly mobile bookings (subtractions).
  spec.beta = 0.25;           // One in four mobile clients disconnects.
  spec.interarrival = 0.5;    // Paper's arrival cadence.
  spec.work_time = 2.0;       // Seconds of user activity per transaction.
  spec.disconnect_mean = 15.0;  // Mean time away after a link drop.
  spec.seed = 7;

  std::puts("mobile booking workload: 600 txns, 5 objects, alpha=0.8, "
            "beta=0.25, 15s mean disconnection\n");

  const ExperimentResult g = RunGtmExperiment(spec);
  PrintResult("GTM", g);
  std::printf("             sleepers aborted at awake: %lld (only those hit "
              "by an incompatible commit)\n\n",
              static_cast<long long>(g.awake_aborts));

  TwoPlPolicy patient;  // 2PL that waits out disconnections: long locks.
  patient.lock_wait_timeout = 120.0;
  patient.idle_timeout = 120.0;
  const ExperimentResult t1 = RunTwoPlExperiment(spec, patient);
  PrintResult("2PL patient", t1);
  std::puts("             locks held across disconnections: waiters stall "
            "behind absent holders\n");

  TwoPlPolicy aggressive;  // 2PL that preventively aborts idle holders.
  aggressive.lock_wait_timeout = 20.0;
  aggressive.idle_timeout = 8.0;
  const ExperimentResult t2 = RunTwoPlExperiment(spec, aggressive);
  PrintResult("2PL killer", t2);
  std::puts("             disconnected holders preventively aborted: the "
            "paper's 'high rate of preventive aborts'\n");

  std::puts("The GTM avoids both pathologies: disconnected transactions "
            "sleep without blocking anyone,\nand awake+reconcile lets them "
            "finish unless a genuinely incompatible operation committed.");
  return 0;
}
