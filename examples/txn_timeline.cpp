// End-to-end transaction observability, demonstrated: replay two traced
// runs and render single transactions' causal timelines stitched from the
// exported spans of every layer.
//
//   Part 1 — lossy replicated run with a mid-run primary failover: the
//   printed timeline shows a mobile client's retries, its degrade to
//   Sleep, the log shipping, the promotion, and the eventual Awake and
//   commit against the new primary.
//
//   Part 2 — sharded run with cross-shard transactions: the timeline of
//   one global transaction fans out over shard branches and commits
//   through the coordinator's two-phase protocol.

#include <cstdio>
#include <set>
#include <vector>

#include "obs/timeline.h"
#include "workload/gtm_experiment.h"

using namespace preserial;

namespace {

// The trace with the richest story: most distinct event kinds, ties broken
// by event count.
obs::Timeline MostEventful(const std::vector<gtm::TraceEvent>& merged) {
  std::set<uint64_t> traces;
  for (const gtm::TraceEvent& e : merged) {
    if (e.trace != 0) traces.insert(e.trace);
  }
  obs::Timeline best;
  size_t best_kinds = 0;
  for (uint64_t id : traces) {
    obs::Timeline tl = obs::BuildTimeline(merged, id);
    std::set<gtm::TraceEventKind> kinds;
    for (const gtm::TraceEvent& e : tl.events) kinds.insert(e.kind);
    if (kinds.size() > best_kinds ||
        (kinds.size() == best_kinds && tl.events.size() > best.events.size())) {
      best_kinds = kinds.size();
      best = std::move(tl);
    }
  }
  return best;
}

void Print(const char* title, const obs::Timeline& tl) {
  std::printf("\n== %s (trace %llu, %zu events) ==\n%s", title,
              static_cast<unsigned long long>(tl.trace), tl.events.size(),
              tl.ToString().c_str());
}

}  // namespace

int main() {
  // --- part 1: lossy channel, replicated GTM, primary killed at t=30 -------
  workload::FailoverExperimentSpec fo;
  fo.base.num_txns = 120;
  fo.base.num_objects = 5;
  fo.base.alpha = 0.7;
  fo.base.beta = 0.0;
  fo.base.seed = 7;
  fo.base.trace_capacity = 16384;
  fo.channel.loss = 0.35;
  fo.channel.delay_mean = 0.05;
  fo.channel.request_timeout = 1.0;
  fo.channel.max_attempts = 3;
  fo.channel.reconnect_delay = 10.0;
  fo.num_backups = 1;
  fo.ship.mode = replica::ShipMode::kSync;
  fo.fail_at = 30.0;
  fo.detect_delay = 1.0;

  const workload::FailoverExperimentResult fr =
      workload::RunFailoverExperiment(fo);
  std::printf("failover run: %lld committed / %lld aborted, failover %s, "
              "%zu trace events\n",
              static_cast<long long>(fr.run.committed),
              static_cast<long long>(fr.run.aborted),
              fr.failover_ran ? "ran" : "skipped", fr.trace_events.size());
  Print("lossy replicated run: retries, sleep, ship, promote, awake",
        MostEventful(fr.trace_events));

  // --- part 2: 4 shards, 40% cross-shard bookings (2PC commits) ------------
  workload::ShardedExperimentSpec sh;
  sh.base.num_txns = 200;
  sh.base.num_objects = 32;
  sh.base.alpha = 0.8;
  sh.base.beta = 0.1;
  sh.base.seed = 7;
  sh.base.trace_capacity = 16384;
  sh.num_shards = 4;
  sh.cross_shard_ratio = 0.4;

  const workload::ShardedExperimentResult sr =
      workload::RunShardedGtmExperiment(sh);
  std::printf("\nsharded run: %lld committed, %lld 2PC commits, "
              "%zu trace events\n",
              static_cast<long long>(sr.run.committed),
              static_cast<long long>(sr.coordinator.commits),
              sr.trace_events.size());

  // Prefer a timeline that actually crossed shards and went through 2PC.
  std::set<uint64_t> traces;
  for (const gtm::TraceEvent& e : sr.trace_events) {
    if (e.trace != 0) traces.insert(e.trace);
  }
  obs::Timeline two_pc;
  for (uint64_t id : traces) {
    obs::Timeline tl = obs::BuildTimeline(sr.trace_events, id);
    if (tl.HasSequence({gtm::TraceEventKind::kTwoPcPrepare,
                        gtm::TraceEventKind::kTwoPcCommit}) &&
        tl.events.size() > two_pc.events.size()) {
      two_pc = std::move(tl);
    }
  }
  Print("cross-shard transaction: branch fan-out and two-phase commit",
        two_pc.events.empty() ? MostEventful(sr.trace_events) : two_pc);
  return 0;
}
