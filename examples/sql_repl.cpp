// Interactive SQL shell over the LDBS substrate: statements from stdin run
// against a WAL-backed database through the sql::Executor. Doubles as a
// scriptable smoke test:  echo "SHOW TABLES;" | sql_repl [wal-path]
//
// With a wal-path argument the database persists across invocations
// (crash-recovered on open); without one it is in-memory.

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "sql/executor.h"
#include "storage/database.h"

using namespace preserial;

int main(int argc, char** argv) {
  std::unique_ptr<storage::Database> db;
  if (argc > 1) {
    db = std::make_unique<storage::Database>(
        std::make_unique<storage::FileWalStorage>(argv[1]));
  } else {
    db = std::make_unique<storage::Database>();
  }
  Result<storage::RecoveryStats> opened = db->Open();
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  if (opened.value().records_scanned > 0) {
    std::printf("-- recovered %zu WAL records (%zu committed txns)\n",
                opened.value().records_scanned,
                opened.value().txns_committed);
  }
  sql::Executor executor(db.get());

  const bool interactive = isatty(fileno(stdin));
  if (interactive) {
    std::puts("preserial SQL shell — end statements with ';', ctrl-d to "
              "quit.");
  }

  std::string buffer;
  std::string line;
  while (true) {
    if (interactive) std::fputs(buffer.empty() ? "sql> " : "...> ", stdout);
    if (!std::getline(std::cin, line)) break;
    buffer += line;
    buffer += '\n';
    const size_t semi = buffer.find(';');
    if (semi == std::string::npos) continue;
    const std::string statement = buffer.substr(0, semi + 1);
    buffer.erase(0, semi + 1);

    // Skip pure whitespace/comments.
    bool blank = true;
    for (char c : statement) {
      if (!std::isspace(static_cast<unsigned char>(c)) && c != ';') {
        blank = false;
        break;
      }
    }
    if (blank) continue;

    Result<sql::ResultSet> result = executor.Run(statement);
    if (result.ok()) {
      std::fputs(result.value().ToString().c_str(), stdout);
    } else {
      std::printf("error: %s\n", result.status().ToString().c_str());
    }
  }
  return 0;
}
