// LDBS substrate walkthrough: write-ahead logging and crash recovery.
// A file-backed database executes committed and in-flight transactions,
// "crashes" (we just drop the in-memory state), and recovers from the WAL:
// committed work survives, the in-flight transaction vanishes, and a
// checkpoint compacts the log.

#include <cstdio>
#include <memory>

#include "storage/database.h"
#include "txn/txn_manager.h"

using namespace preserial;
using storage::Row;
using storage::Value;

namespace {

std::unique_ptr<storage::Database> OpenAt(const std::string& path) {
  auto db = std::make_unique<storage::Database>(
      std::make_unique<storage::FileWalStorage>(path));
  Result<storage::RecoveryStats> stats = db->Open();
  if (!stats.ok()) {
    std::printf("open failed: %s\n", stats.status().ToString().c_str());
    return nullptr;
  }
  std::printf("opened %s: %zu records scanned, %zu applied, "
              "%zu txns committed, %zu discarded\n",
              path.c_str(), stats.value().records_scanned,
              stats.value().records_applied, stats.value().txns_committed,
              stats.value().txns_discarded);
  return db;
}

}  // namespace

int main() {
  const std::string path = "/tmp/preserial_recovery_demo.wal";
  std::remove(path.c_str());

  // --- session 1: create schema, commit one txn, crash mid-second ---------
  {
    std::unique_ptr<storage::Database> db = OpenAt(path);
    if (db == nullptr) return 1;
    Result<storage::Schema> schema = storage::Schema::Create(
        {
            storage::ColumnDef{"id", storage::ValueType::kInt64, false},
            storage::ColumnDef{"balance", storage::ValueType::kInt64, false},
        },
        0);
    if (!db->CreateTable("accounts", std::move(schema).value()).ok())
      return 1;
    if (!db->InsertRow("accounts", Row({Value::Int(1), Value::Int(100)}))
             .ok())
      return 1;
    if (!db->InsertRow("accounts", Row({Value::Int(2), Value::Int(100)}))
             .ok())
      return 1;

    txn::TwoPhaseLockingEngine engine(db.get());
    // Committed transfer: 1 -> 2, 30 units.
    const TxnId ok_txn = engine.Begin();
    (void)engine.Write(ok_txn, "accounts", Value::Int(1), 1, Value::Int(70));
    (void)engine.Write(ok_txn, "accounts", Value::Int(2), 1, Value::Int(130));
    if (!engine.Commit(ok_txn).ok()) return 1;
    std::puts("committed transfer of 30 from account 1 to account 2");

    // In-flight transaction: updates applied in memory, never committed.
    const TxnId doomed = engine.Begin();
    (void)engine.Write(doomed, "accounts", Value::Int(1), 1, Value::Int(0));
    std::puts("started a second transfer... and the process 'crashes' here");
    // db goes out of scope without commit: the crash.
  }

  // --- session 2: recover ---------------------------------------------------
  {
    std::unique_ptr<storage::Database> db = OpenAt(path);
    if (db == nullptr) return 1;
    storage::Table* accounts = db->GetTable("accounts").value();
    const Value b1 = accounts->GetColumnByKey(Value::Int(1), 1).value();
    const Value b2 = accounts->GetColumnByKey(Value::Int(2), 1).value();
    std::printf("after recovery: account 1 = %s, account 2 = %s "
                "(expected 70 / 130)\n",
                b1.ToString().c_str(), b2.ToString().c_str());
    if (b1 != Value::Int(70) || b2 != Value::Int(130)) return 1;

    // Compact the log: the snapshot replaces begin/update/commit history.
    if (!db->Checkpoint().ok()) return 1;
    std::puts("checkpointed the WAL (history collapsed into a snapshot)");
  }

  // --- session 3: reopen from the checkpoint --------------------------------
  {
    std::unique_ptr<storage::Database> db = OpenAt(path);
    if (db == nullptr) return 1;
    const Value b1 = db->GetTable("accounts")
                         .value()
                         ->GetColumnByKey(Value::Int(1), 1)
                         .value();
    std::printf("after checkpoint reopen: account 1 = %s\n",
                b1.ToString().c_str());
    if (b1 != Value::Int(70)) return 1;
  }
  std::remove(path.c_str());
  std::puts("recovery demo finished successfully");
  return 0;
}
