// The paper's Sec. II motivating scenario, live and multithreaded: a web
// agency sells personalized package tours (flight + hotel + museum + car).
// Many clients book concurrently through the thread-safe GtmService; all
// bookings are compatible subtractions, so they share the availability
// counters instead of serializing, and `free >= 0` CHECK constraints stop
// overselling at SST time.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/random.h"
#include "gtm/gtm_service.h"
#include "storage/database.h"
#include "workload/travel_agency.h"

using namespace preserial;
using storage::Value;
using namespace preserial::workload;

int main() {
  TravelAgencyConfig config;
  config.num_flights = 6;
  config.num_hotels = 5;
  config.num_museums = 3;
  config.num_cars = 4;
  config.seats_per_flight = 40;
  config.rooms_per_hotel = 40;
  config.tickets_per_museum = 80;
  config.cars_per_depot = 30;

  storage::Database db;
  if (!db.Open().ok()) return 1;
  if (!BuildTravelAgencyDatabase(&db, config).ok()) return 1;

  gtm::GtmService service(&db);
  if (!RegisterTravelObjects(service.gtm(), config).ok()) return 1;

  constexpr int kClients = 12;
  constexpr int kToursPerClient = 15;
  std::atomic<int> booked{0};
  std::atomic<int> rejected{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(1000 + static_cast<uint64_t>(c));
      for (int i = 0; i < kToursPerClient; ++i) {
        const TourPlan tour = SampleTour(rng, config);
        if (BookTour(&service, tour).ok()) {
          booked.fetch_add(1);
        } else {
          rejected.fetch_add(1);  // Sold out somewhere on the route.
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  std::printf("clients: %d, tours attempted: %d\n", kClients,
              kClients * kToursPerClient);
  std::printf("booked: %d, rejected (sold out): %d\n", booked.load(),
              rejected.load());

  // Inventory accounting must balance exactly: every committed tour took
  // one seat, one room, one ticket and one car.
  auto remaining = [&](const char* table, size_t rows) {
    int64_t total = 0;
    for (size_t i = 0; i < rows; ++i) {
      total += db.GetTable(table)
                   .value()
                   ->GetColumnByKey(Value::Int(static_cast<int64_t>(i)),
                                    kAvailabilityColumn)
                   .value()
                   .as_int();
    }
    return total;
  };
  const int64_t seats = remaining(kFlightsTable, config.num_flights);
  const int64_t rooms = remaining(kHotelsTable, config.num_hotels);
  const int64_t tickets = remaining(kMuseumsTable, config.num_museums);
  const int64_t cars = remaining(kCarsTable, config.num_cars);
  const int64_t seats0 =
      static_cast<int64_t>(config.num_flights) * config.seats_per_flight;
  const int64_t rooms0 =
      static_cast<int64_t>(config.num_hotels) * config.rooms_per_hotel;
  const int64_t tickets0 =
      static_cast<int64_t>(config.num_museums) * config.tickets_per_museum;
  const int64_t cars0 =
      static_cast<int64_t>(config.num_cars) * config.cars_per_depot;

  std::printf("remaining seats %lld/%lld, rooms %lld/%lld, tickets "
              "%lld/%lld, cars %lld/%lld\n",
              static_cast<long long>(seats), static_cast<long long>(seats0),
              static_cast<long long>(rooms), static_cast<long long>(rooms0),
              static_cast<long long>(tickets),
              static_cast<long long>(tickets0),
              static_cast<long long>(cars), static_cast<long long>(cars0));

  const bool balanced = (seats0 - seats) == booked.load() &&
                        (rooms0 - rooms) == booked.load() &&
                        (tickets0 - tickets) == booked.load() &&
                        (cars0 - cars) == booked.load();
  std::printf("inventory accounting %s\n",
              balanced ? "balances exactly" : "MISMATCH");
  std::printf("\nmiddleware stats:\n%s",
              service.gtm()->metrics().Summary().c_str());
  return balanced ? 0 : 1;
}
