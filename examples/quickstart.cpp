// Quickstart: the smallest end-to-end use of the preserial library.
//
// 1. Create an in-memory LDBS with one table.
// 2. Put a GTM (the paper's middleware) in front of it.
// 3. Run two concurrent long running transactions that both decrement the
//    same counter: they share the object (add/sub operations commute), each
//    works on its own virtual copy, and reconciliation merges both deltas
//    at commit.

#include <cstdio>

#include "gtm/gtm.h"
#include "storage/database.h"

using namespace preserial;
using semantics::Operation;
using storage::Value;

int main() {
  // --- the data layer: a table of flights with free-seat counters ---------
  storage::Database db;
  if (!db.Open().ok()) return 1;
  Result<storage::Schema> schema = storage::Schema::Create(
      {
          storage::ColumnDef{"id", storage::ValueType::kInt64, false},
          storage::ColumnDef{"free_seats", storage::ValueType::kInt64, false},
      },
      /*primary_key=*/0);
  if (!db.CreateTable("flights", std::move(schema).value()).ok()) return 1;
  if (!db.InsertRow("flights",
                    storage::Row({Value::Int(1), Value::Int(50)}))
           .ok()) {
    return 1;
  }

  // --- the middleware: a GTM managing the seat counter as an object -------
  ManualClock clock;
  gtm::Gtm gtm(&db, &clock);
  gtm.trace()->Enable(64);  // Record every middleware transition.
  if (!gtm.RegisterObject("flight/1", "flights", Value::Int(1), {1}).ok()) {
    return 1;
  }

  // --- two mobile clients book the same flight concurrently ---------------
  const TxnId alice = gtm.Begin();
  const TxnId bob = gtm.Begin();

  // Both are granted at once: subtractions are semantically compatible.
  Status s = gtm.Invoke(alice, "flight/1", 0, Operation::Sub(Value::Int(1)));
  std::printf("alice books a seat: %s\n", s.ToString().c_str());
  s = gtm.Invoke(bob, "flight/1", 0, Operation::Sub(Value::Int(2)));
  std::printf("bob books two seats: %s\n", s.ToString().c_str());

  // Each sees only its own virtual copy; the database is untouched.
  std::printf("alice's copy: %s, bob's copy: %s, database: %s\n",
              gtm.ReadLocal(alice, "flight/1", 0).value().ToString().c_str(),
              gtm.ReadLocal(bob, "flight/1", 0).value().ToString().c_str(),
              db.GetTable("flights")
                  .value()
                  ->GetColumnByKey(Value::Int(1), 1)
                  .value()
                  .ToString()
                  .c_str());

  // Commits reconcile: X_new = A_temp + X_permanent - X_read (paper eq. 1).
  if (!gtm.RequestCommit(alice).ok()) return 1;
  if (!gtm.RequestCommit(bob).ok()) return 1;

  const Value final_seats = db.GetTable("flights")
                                .value()
                                ->GetColumnByKey(Value::Int(1), 1)
                                .value();
  std::printf("after both commits the database holds %s free seats "
              "(50 - 1 - 2 = 47)\n",
              final_seats.ToString().c_str());
  std::printf("middleware stats:\n%s", gtm.metrics().Summary().c_str());
  std::printf("\nmiddleware trace:\n%s", gtm.trace()->Dump().c_str());
  return final_seats == Value::Int(47) ? 0 : 1;
}
