// Ablation: primary failover under sync vs async log shipping. The lossy
// Sec. VI-B arrival sequence runs against a replica group; at --fail-at the
// primary is killed and a backup is promoted after the detection delay.
// Sync shipping acknowledges a command only after every live backup
// applied it, so the promoted backup knows every Sleeping transaction the
// dead primary knew — preserved is 100% by construction. Async shipping
// trades that for lower command latency: the promotion fences off the
// unreplicated log suffix, and Sleeping transactions parked inside it are
// lost. The table and JSON report failover latency, the Sleeping
// preserved/lost split, replication lag at the kill and the usual commit
// counts.
//
// Knobs: --replicas=N (backups per group), --ship-mode=sync|async|both,
// --fail-at=T (virtual seconds; <= 0 disables the kill).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "workload/gtm_experiment.h"

int main(int argc, char** argv) {
  using namespace preserial;
  using workload::FailoverExperimentResult;
  using workload::FailoverExperimentSpec;

  size_t replicas = 2;
  double fail_at = 60.0;
  std::vector<replica::ShipMode> modes = {replica::ShipMode::kSync,
                                          replica::ShipMode::kAsync};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--replicas=", 11) == 0) {
      replicas = static_cast<size_t>(std::atoll(argv[i] + 11));
    } else if (std::strncmp(argv[i], "--fail-at=", 10) == 0) {
      fail_at = std::atof(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--ship-mode=sync") == 0) {
      modes = {replica::ShipMode::kSync};
    } else if (std::strcmp(argv[i], "--ship-mode=async") == 0) {
      modes = {replica::ShipMode::kAsync};
    } else if (std::strcmp(argv[i], "--ship-mode=both") == 0) {
      modes = {replica::ShipMode::kSync, replica::ShipMode::kAsync};
    } else if (std::strncmp(argv[i], "--trace", 7) == 0 ||
               std::strncmp(argv[i], "--obs-out=", 10) == 0) {
      // Handled by ParseObsFlags below.
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--replicas=N] [--ship-mode=sync|async|both] "
          "[--fail-at=T] [--trace[=N]] [--obs-out=PREFIX]\n",
          argv[0]);
      return 2;
    }
  }
  const bench::ObsFlags obs = bench::ParseObsFlags(argc, argv);
  PRESERIAL_CHECK(replicas >= 1) << "need at least one backup to promote";

  FailoverExperimentSpec spec;
  spec.base.num_txns = 400;
  spec.base.num_objects = 5;
  spec.base.alpha = 0.7;
  spec.base.beta = 0.0;  // Outages come from the channel, not the plan.
  spec.base.interarrival = 0.5;
  spec.base.work_time = 2.0;
  spec.base.seed = 42;
  // Lossy enough that retry budgets run out and sessions park in Sleep —
  // the population the failover must not lose.
  spec.channel.loss = 0.35;
  spec.channel.duplicate = 0.1;
  spec.channel.reorder = 0.1;
  spec.channel.delay_mean = 0.05;
  spec.channel.request_timeout = 1.0;
  spec.channel.max_attempts = 3;
  spec.channel.reconnect_delay = 15.0;
  spec.num_backups = replicas;
  // The same flaky ship link for both modes: sync rides it out inline
  // (resends before acking the client), async accumulates lag.
  spec.ship.loss = 0.2;
  spec.ship.duplicate = 0.05;
  spec.pump_interval = 0.5;
  spec.fail_at = fail_at;
  spec.detect_delay = 1.0;

  bench::Report report("ablation_failover");
  report.Section(
      StrFormat("Ablation: failover at t=%.0f — sync vs async shipping "
                "(%zu backups)",
                fail_at, replicas),
      {"ship", "commit%", "failover s", "sleep@kill", "preserved", "lost",
       "lag@kill", "truncated"},
      12);
  for (replica::ShipMode mode : modes) {
    FailoverExperimentSpec s = spec;
    s.ship.mode = mode;
    const FailoverExperimentResult r = RunFailoverExperiment(s);
    const double n = static_cast<double>(s.base.num_txns);
    report.BeginRow();
    report.Str("ship_mode", replica::ShipModeName(mode));
    report.TableOnly(bench::Num(100.0 * r.run.committed / n, 2));
    report.Num("failover_latency_s", r.failover_latency, 2);
    report.Int("sleeping_at_kill", r.sleeping_at_kill);
    report.Int("sleeping_preserved", r.sleeping_preserved);
    report.Int("sleeping_lost", r.sleeping_lost);
    report.Int("replication_lag_at_kill", r.replication_lag_at_kill);
    report.Int("truncated_records", static_cast<int64_t>(r.truncated_records));
    report.JsonInt("failover_ran", r.failover_ran ? 1 : 0);
    report.JsonNum("preserved_pct",
                   r.sleeping_at_kill > 0
                       ? 100.0 * static_cast<double>(r.sleeping_preserved) /
                             static_cast<double>(r.sleeping_at_kill)
                       : 100.0,
                   2);
    report.JsonInt("committed", r.run.committed);
    report.JsonInt("aborted", r.run.aborted);
    report.JsonInt("retries", r.run.retries);
    report.JsonInt("degrades", r.run.degraded_to_sleep);
    report.JsonInt("committed_subtracts", r.committed_subtracts);
    report.JsonInt("server_committed_subtracts", r.server_committed_subtracts);
    report.JsonInt("quantity_consumed", r.quantity_consumed);
    report.JsonInt("duplicates_suppressed", r.duplicates_suppressed);
    report.JsonInt("final_epoch", static_cast<int64_t>(r.final_epoch));
    report.BeginObject("ship");
    report.JsonInt("records_shipped", r.ship.records_shipped);
    report.JsonInt("records_acked", r.ship.records_acked);
    report.JsonInt("resends", r.ship.resends);
    report.JsonInt("duplicates_delivered", r.ship.duplicates_delivered);
    report.JsonInt("record_losses", r.ship.record_losses);
    report.JsonInt("ack_losses", r.ship.ack_losses);
    report.EndObject();
    report.EndRow();
  }

  report.Note(
      "shape check: sync shipping never loses a Sleeping transaction "
      "(preserved == at-kill, lag 0); async fences off the unreplicated "
      "suffix at promotion, so lag at the kill turns into truncated "
      "records and potentially lost sleepers.");
  report.Finish();

  if (obs.enabled()) {
    FailoverExperimentSpec s = spec;
    s.ship.mode = replica::ShipMode::kAsync;
    s.base.trace_capacity = obs.trace_capacity;
    const FailoverExperimentResult traced = RunFailoverExperiment(s);
    bench::WriteObsOutputs(obs, traced.trace_events, traced.snapshot);
  }
  return 0;
}
