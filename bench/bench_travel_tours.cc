// Macro-benchmark of the paper's Sec. II motivating scenario: package tours
// (flight -> hotel -> museum -> car, think time between stops) as multi-step
// long running transactions, GTM vs. strict 2PL, with and without
// disconnections. The paper's whole pitch in one table: tours are mutually
// compatible bookings, so the GTM runs them wait-free where 2PL serializes
// every shared stop across the tours' full think time.

#include <cstdio>

#include "bench_util.h"
#include "workload/travel_agency.h"

int main() {
  using namespace preserial;
  using workload::TourResult;
  using workload::TourWorkloadSpec;

  TourWorkloadSpec base;
  base.num_tours = 400;
  base.interarrival = 0.5;
  base.think_time = 2.0;
  base.final_think = 2.0;
  base.disconnect_mean = 15.0;
  base.seed = 42;
  // Ample stock so the table isolates concurrency effects; the scarce
  // variant below shows the stock-out behaviour.
  base.agency.seats_per_flight = 1000;
  base.agency.rooms_per_hotel = 1000;
  base.agency.tickets_per_museum = 1000;
  base.agency.cars_per_depot = 1000;

  bench::Banner(
      "Package tours (4 bookings + think time), 400 tours, GTM vs 2PL");
  bench::TablePrinter table({"beta", "engine", "committed", "abort%",
                             "avg tour (s)", "p99 (s)", "waits"},
                            13);
  table.PrintHeader();
  for (double beta : {0.0, 0.1, 0.3}) {
    TourWorkloadSpec spec = base;
    spec.beta = beta;
    const TourResult g = RunGtmTourExperiment(spec);
    table.PrintRow({bench::Num(beta, 1), "GTM",
                    bench::Num(g.run.committed, 0),
                    bench::Num(g.run.AbortPercent(), 2),
                    bench::Num(g.run.AvgLatency(), 2),
                    bench::Num(g.run.latency_committed.p99(), 2),
                    bench::Num(g.waits, 0)});
    const TourResult t = RunTwoPlTourExperiment(spec,
                                                /*lock_wait_timeout=*/60.0,
                                                /*idle_timeout=*/20.0);
    table.PrintRow({bench::Num(beta, 1), "2PL",
                    bench::Num(t.run.committed, 0),
                    bench::Num(t.run.AbortPercent(), 2),
                    bench::Num(t.run.AvgLatency(), 2),
                    bench::Num(t.run.latency_committed.p99(), 2),
                    bench::Num(t.waits, 0)});
  }
  std::puts(
      "\nshape check: GTM tours never wait (compatible bookings share every "
      "counter) and survive disconnections; 2PL tours convoy behind each "
      "other's think time and lose disconnected holders to the idle "
      "timeout.");

  bench::Banner("Scarce inventory: 400 tours chasing 120 cars (CHECK >= 0)");
  TourWorkloadSpec scarce = base;
  scarce.beta = 0.0;
  scarce.agency = workload::TravelAgencyConfig{};  // Default small stock.
  bench::TablePrinter table2({"engine", "committed", "aborted", "abort%"},
                             13);
  table2.PrintHeader();
  const TourResult gs = RunGtmTourExperiment(scarce);
  table2.PrintRow({"GTM", bench::Num(gs.run.committed, 0),
                   bench::Num(gs.run.aborted, 0),
                   bench::Num(gs.run.AbortPercent(), 2)});
  const TourResult ts = RunTwoPlTourExperiment(scarce, 60.0, 20.0);
  table2.PrintRow({"2PL", bench::Num(ts.run.committed, 0),
                   bench::Num(ts.run.aborted, 0),
                   bench::Num(ts.run.AbortPercent(), 2)});
  std::puts(
      "\nnobody oversells: the committed count is capped by the car stock "
      "in both engines (the SST / data layer enforces the constraint).");
  return 0;
}
