// Microbenchmarks of the substrate hot paths (google-benchmark): B+-tree,
// lock manager, WAL append, and the GTM admission/commit path. These
// establish that middleware overheads are microseconds — negligible next
// to the seconds-scale user think times the paper's model assumes, which
// justifies the "instantaneous SST" modelling assumption of Sec. VI-A.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/random.h"
#include "gtm/gtm.h"
#include "lock/lock_manager.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "storage/btree.h"
#include "storage/database.h"
#include "storage/wal.h"

namespace {

using namespace preserial;
using storage::Row;
using storage::Value;

void BM_BTreeInsert(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    storage::BTree tree;
    state.ResumeTiming();
    for (int64_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(tree.Insert(Value::Int(i), i));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000);

void BM_BTreeLookup(benchmark::State& state) {
  const int64_t n = state.range(0);
  storage::BTree tree;
  for (int64_t i = 0; i < n; ++i) {
    (void)tree.Insert(Value::Int(i), static_cast<storage::RowId>(i));
  }
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Lookup(Value::Int(rng.NextInt(0, n - 1))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup)->Arg(1000)->Arg(100000);

void BM_BTreeScan(benchmark::State& state) {
  const int64_t n = state.range(0);
  storage::BTree tree;
  for (int64_t i = 0; i < n; ++i) {
    (void)tree.Insert(Value::Int(i), static_cast<storage::RowId>(i));
  }
  for (auto _ : state) {
    int64_t count = 0;
    tree.ScanAll([&count](const Value&, storage::RowId) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeScan)->Arg(10000);

void BM_LockAcquireRelease(benchmark::State& state) {
  lock::LockManager lm;
  TxnId txn = 1;
  for (auto _ : state) {
    (void)lm.Acquire(txn, "resource", lock::LockMode::kExclusive);
    benchmark::DoNotOptimize(lm.ReleaseAll(txn));
    ++txn;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockAcquireRelease);

void BM_WalAppend(benchmark::State& state) {
  storage::MemoryWalStorage wal_storage;
  storage::WalWriter writer(&wal_storage);
  TxnId txn = 1;
  for (auto _ : state) {
    (void)writer.LogUpdate(txn, "t", Value::Int(7),
                           Row({Value::Int(7), Value::Int(42)}));
    ++txn;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalAppend);

struct GtmFixtureState {
  std::unique_ptr<storage::Database> db;
  ManualClock clock;
  std::unique_ptr<gtm::Gtm> gtm;

  GtmFixtureState() {
    db = std::make_unique<storage::Database>();
    (void)db->Open();
    auto schema = storage::Schema::Create(
        {
            storage::ColumnDef{"id", storage::ValueType::kInt64, false},
            storage::ColumnDef{"qty", storage::ValueType::kInt64, false},
        },
        0);
    (void)db->CreateTable("t", std::move(schema).value());
    (void)db->InsertRow("t", Row({Value::Int(0), Value::Int(1 << 30)}));
    gtm = std::make_unique<gtm::Gtm>(db.get(), &clock);
    (void)gtm->RegisterObject("X", "t", Value::Int(0), {1});
  }
};

void BM_GtmInvokeCommit(benchmark::State& state) {
  GtmFixtureState fx;
  for (auto _ : state) {
    const TxnId t = fx.gtm->Begin();
    (void)fx.gtm->Invoke(t, "X", 0,
                         semantics::Operation::Sub(Value::Int(1)));
    benchmark::DoNotOptimize(fx.gtm->RequestCommit(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GtmInvokeCommit);

void BM_GtmConcurrentSharers(benchmark::State& state) {
  const int64_t sharers = state.range(0);
  GtmFixtureState fx;
  for (auto _ : state) {
    std::vector<TxnId> txns;
    txns.reserve(sharers);
    for (int64_t i = 0; i < sharers; ++i) {
      const TxnId t = fx.gtm->Begin();
      (void)fx.gtm->Invoke(t, "X", 0,
                           semantics::Operation::Sub(Value::Int(1)));
      txns.push_back(t);
    }
    for (TxnId t : txns) {
      benchmark::DoNotOptimize(fx.gtm->RequestCommit(t));
    }
  }
  state.SetItemsProcessed(state.iterations() * sharers);
}
BENCHMARK(BM_GtmConcurrentSharers)->Arg(8)->Arg(64);

void BM_SqlParseSelect(benchmark::State& state) {
  const std::string stmt =
      "SELECT id, free FROM flights WHERE free >= 1 AND id != 3 "
      "ORDER BY free DESC LIMIT 10";
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::Parse(stmt));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqlParseSelect);

void BM_SqlPointSelect(benchmark::State& state) {
  storage::Database db;
  (void)db.Open();
  sql::Executor exec(&db);
  (void)exec.Run("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  for (int64_t i = 0; i < 10000; ++i) {
    (void)exec.Run("INSERT INTO t VALUES (" + std::to_string(i) + ", 1)");
  }
  Rng rng(1);
  for (auto _ : state) {
    const std::string stmt =
        "SELECT v FROM t WHERE id = " + std::to_string(rng.NextInt(0, 9999));
    benchmark::DoNotOptimize(exec.Run(stmt));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqlPointSelect);

void BM_SqlIndexedEquality(benchmark::State& state) {
  storage::Database db;
  (void)db.Open();
  sql::Executor exec(&db);
  (void)exec.Run("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  for (int64_t i = 0; i < 10000; ++i) {
    (void)exec.Run("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
                   std::to_string(i % 100) + ")");
  }
  (void)exec.Run("CREATE INDEX by_v ON t (v)");
  Rng rng(1);
  for (auto _ : state) {
    const std::string stmt =
        "SELECT id FROM t WHERE v = " + std::to_string(rng.NextInt(0, 99));
    benchmark::DoNotOptimize(exec.Run(stmt));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqlIndexedEquality);

}  // namespace
