// Regenerates paper Fig. 1: average transaction execution time as a
// function of the number of conflicts (c) and of incompatible operations
// (i), for 2PL (eq. 3) and the proposed scheme (eqs. 4-5), tau_e = 1.
// A second section validates the analytic curves against discrete-event
// simulation of the real GTM and 2PL engines.

#include <cstdio>

#include "bench_util.h"
#include "model/analytic.h"
#include "workload/synthetic.h"

int main() {
  using namespace preserial;
  constexpr int64_t kN = 1000;
  constexpr double kTauE = 1.0;

  bench::Banner(
      "Fig. 1 (analytic): avg execution time, n = 1000, tau_e = 1");
  bench::TablePrinter table({"conflicts%", "2PL", "ours i=0%", "ours i=20%",
                             "ours i=40%", "ours i=60%", "ours i=80%",
                             "ours i=100%"},
                            12);
  table.PrintHeader();
  for (int cp = 0; cp <= 100; cp += 10) {
    const int64_t c = kN * cp / 100;
    std::vector<std::string> row = {bench::Num(cp, 0),
                                    bench::Num(model::TwoPlExecutionTime(
                                        kN, c, kTauE))};
    for (int ip = 0; ip <= 100; ip += 20) {
      const int64_t i = kN * ip / 100;
      row.push_back(bench::Num(model::OurExecutionTime(kN, c, i, kTauE)));
    }
    table.PrintRow(row);
  }
  std::printf(
      "\nbest case (c=100%%, i=0): ours %.3f vs 2PL %.3f -> %.0f%% "
      "improvement (paper: 50%%)\n",
      model::OurExecutionTime(kN, kN, 0, kTauE),
      model::TwoPlExecutionTime(kN, kN, kTauE),
      100.0 * (model::TwoPlExecutionTime(kN, kN, kTauE) -
               model::OurExecutionTime(kN, kN, 0, kTauE)) /
          model::OurExecutionTime(kN, kN, 0, kTauE));

  bench::Banner(
      "Fig. 1 (simulation): real GTM / 2PL engines on the model's workload "
      "(n = 200)");
  bench::TablePrinter sim_table({"conflicts%", "incomp%", "sim 2PL",
                                 "model 2PL", "sim GTM", "model GTM",
                                 "realized K"},
                                12);
  sim_table.PrintHeader();
  for (int cp : {0, 25, 50, 75, 100}) {
    for (int ip : {0, 50, 100}) {
      workload::ConflictSpec spec;
      spec.n = 200;
      spec.c = spec.n * cp / 100;
      spec.i = spec.n * ip / 100;
      spec.tau_e = kTauE;
      spec.seed = static_cast<uint64_t>(cp * 1000 + ip);
      const workload::ConflictResult r =
          workload::RunConflictExperiment(spec);
      sim_table.PrintRow({bench::Num(cp, 0), bench::Num(ip, 0),
                          bench::Num(r.avg_exec_2pl), bench::Num(r.model_2pl),
                          bench::Num(r.avg_exec_gtm), bench::Num(r.model_gtm),
                          bench::Num(r.k_incompatible_conflicts, 0)});
    }
  }
  std::puts(
      "\nshape check: 2PL grows linearly in c and ignores i; ours grows "
      "with c*i and lower-bounds at tau_e.");
  return 0;
}
