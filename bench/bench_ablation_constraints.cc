// Ablation: constraint-aware admission (paper Sec. VII mitigation 2).
// With scarce inventory and a CHECK constraint, concurrent compatible
// subtractors can collectively overdraw and die at SST time. The admission
// policy refuses operations whose pessimistic projection would violate the
// constraint, converting late (expensive) aborts into early refusals.

#include <cstdio>

#include "bench_util.h"
#include "workload/gtm_experiment.h"

int main(int argc, char** argv) {
  using namespace preserial;
  using workload::ExperimentResult;
  using workload::GtmExperimentSpec;

  const bench::ObsFlags obs = bench::ParseObsFlags(argc, argv);
  bench::Banner(
      "Ablation: constraint-aware admission under scarce inventory");
  bench::TablePrinter table({"inventory", "policy", "committed",
                             "late aborts", "early denials", "avg exec"},
                            14);
  table.PrintHeader();
  for (int64_t inventory : {50, 100, 200, 400}) {
    GtmExperimentSpec spec;
    spec.num_txns = 500;
    spec.num_objects = 1;  // One hot flight.
    spec.alpha = 1.0;
    spec.beta = 0.0;
    spec.interarrival = 0.5;
    spec.work_time = 3.0;
    spec.initial_quantity = inventory;
    spec.add_quantity_constraint = true;
    spec.seed = 42;

    gtm::GtmOptions off;
    off.constraint_aware_admission = false;
    const ExperimentResult r_off = RunGtmExperiment(spec, off);
    table.PrintRow({bench::Num(inventory, 0), "off",
                    bench::Num(r_off.run.committed, 0),
                    bench::Num(r_off.run.aborted, 0),
                    bench::Num(r_off.admission_denials, 0),
                    bench::Num(r_off.run.AvgLatency(), 3)});

    gtm::GtmOptions on;
    on.constraint_aware_admission = true;
    const ExperimentResult r_on = RunGtmExperiment(spec, on);
    table.PrintRow({bench::Num(inventory, 0), "on",
                    bench::Num(r_on.run.committed, 0),
                    bench::Num(r_on.run.aborted, 0),
                    bench::Num(r_on.admission_denials, 0),
                    bench::Num(r_on.run.AvgLatency(), 3)});
  }
  std::puts(
      "\nshape check: both policies sell exactly the inventory; with the "
      "policy on, the failures move from SST-time aborts (after the user "
      "did all the work) to up-front admission denials.");

  if (obs.enabled()) {
    GtmExperimentSpec spec;
    spec.num_txns = 500;
    spec.num_objects = 1;
    spec.alpha = 1.0;
    spec.beta = 0.0;
    spec.interarrival = 0.5;
    spec.work_time = 3.0;
    spec.initial_quantity = 100;
    spec.add_quantity_constraint = true;
    spec.seed = 42;
    spec.trace_capacity = obs.trace_capacity;
    gtm::GtmOptions on;
    on.constraint_aware_admission = true;
    const ExperimentResult traced = RunGtmExperiment(spec, on);
    bench::WriteObsOutputs(obs, traced.trace_events, traced.snapshot);
  }
  return 0;
}
