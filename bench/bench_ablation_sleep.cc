// Ablation: sleeping transactions on/off. With sleeping off, a
// disconnection aborts the transaction immediately (the 2PL-style
// preventive treatment) — isolating the value of the sleep/awake protocol.

#include <cstdio>

#include "bench_util.h"
#include "workload/gtm_experiment.h"

int main(int argc, char** argv) {
  using namespace preserial;
  using workload::ExperimentResult;
  using workload::GtmExperimentSpec;

  const bench::ObsFlags obs = bench::ParseObsFlags(argc, argv);
  GtmExperimentSpec base;
  base.num_txns = 1000;
  base.num_objects = 5;
  base.alpha = 0.7;
  base.interarrival = 0.5;
  base.work_time = 2.0;
  base.disconnect_mean = 10.0;
  base.seed = 42;

  gtm::GtmOptions with_sleep;
  with_sleep.sleep_enabled = true;
  gtm::GtmOptions without_sleep;
  without_sleep.sleep_enabled = false;

  bench::Banner("Ablation: sleeping transactions (abort % vs beta)");
  bench::TablePrinter table({"beta", "sleep abort%", "awake-aborts",
                             "nosleep abort%", "disc-aborts"},
                            15);
  table.PrintHeader();
  for (double beta : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    GtmExperimentSpec spec = base;
    spec.beta = beta;
    const ExperimentResult on = RunGtmExperiment(spec, with_sleep);
    const ExperimentResult off = RunGtmExperiment(spec, without_sleep);
    table.PrintRow({bench::Num(beta, 2),
                    bench::Num(on.run.AbortPercent(), 2),
                    bench::Num(on.awake_aborts, 0),
                    bench::Num(off.run.AbortPercent(), 2),
                    bench::Num(off.run.aborted, 0)});
  }
  std::puts(
      "\nshape check: without sleeping, every disconnection is an abort "
      "(abort%% tracks beta * alpha); with sleeping only the sleepers hit "
      "by an incompatible commit die.");

  if (obs.enabled()) {
    GtmExperimentSpec spec = base;
    spec.beta = 0.2;
    spec.trace_capacity = obs.trace_capacity;
    const ExperimentResult traced = RunGtmExperiment(spec, with_sleep);
    bench::WriteObsOutputs(obs, traced.trace_events, traced.snapshot);
  }
  return 0;
}
