// Baseline triangle (paper Sec. II strategies) on the Sec. VI-B workload:
//   - GTM (this paper): semantic sharing + sleeping transactions
//   - strict 2PL: locks held across user work and disconnections
//   - freeze/OCC: no locks, frozen operations applied at commit under
//     constraints (with and without read validation)
// Reported per engine: commit/abort counts, average latency, waits.

#include <cstdio>

#include "bench_util.h"
#include "workload/gtm_experiment.h"

int main() {
  using namespace preserial;
  using workload::ExperimentResult;
  using workload::GtmExperimentSpec;
  using workload::TwoPlPolicy;

  GtmExperimentSpec spec;
  spec.num_txns = 1000;
  spec.num_objects = 5;
  spec.alpha = 0.7;
  spec.beta = 0.1;
  spec.interarrival = 0.5;
  spec.work_time = 2.0;
  spec.disconnect_mean = 10.0;
  spec.seed = 42;

  TwoPlPolicy policy;
  policy.lock_wait_timeout = 30.0;
  policy.idle_timeout = 30.0;

  bench::Banner(
      "Baselines on the Sec. VI-B workload (alpha=0.7, beta=0.1, n=1000)");
  bench::TablePrinter table({"engine", "committed", "aborted", "abort%",
                             "avg exec (s)", "tput (txn/s)", "waits"},
                            14);
  table.PrintHeader();

  auto row = [&table](const char* name, const ExperimentResult& r) {
    table.PrintRow({name, bench::Num(r.run.committed, 0),
                    bench::Num(r.run.aborted, 0),
                    bench::Num(r.run.AbortPercent(), 2),
                    bench::Num(r.run.AvgLatency(), 3),
                    bench::Num(r.run.Throughput(), 3),
                    bench::Num(r.waits, 0)});
  };
  row("GTM", RunGtmExperiment(spec));
  row("strict 2PL", RunTwoPlExperiment(spec, policy));
  row("freeze/OCC", RunOccExperiment(spec, false));
  row("OCC+validate", RunOccExperiment(spec, true));

  bench::Banner("Scarce inventory variant (qty=120 across 5 objects, "
                "constraint on)");
  GtmExperimentSpec scarce = spec;
  scarce.alpha = 1.0;
  scarce.beta = 0.0;
  scarce.initial_quantity = 120;
  scarce.add_quantity_constraint = true;
  bench::TablePrinter table2({"engine", "committed", "aborted", "abort%"},
                             14);
  table2.PrintHeader();
  const ExperimentResult g2 = RunGtmExperiment(scarce);
  table2.PrintRow({"GTM", bench::Num(g2.run.committed, 0),
                   bench::Num(g2.run.aborted, 0),
                   bench::Num(g2.run.AbortPercent(), 2)});
  gtm::GtmOptions admission;
  admission.constraint_aware_admission = true;
  const ExperimentResult g3 = RunGtmExperiment(scarce, admission);
  table2.PrintRow({"GTM+admission", bench::Num(g3.run.committed, 0),
                   bench::Num(g3.run.aborted, 0),
                   bench::Num(g3.run.AbortPercent(), 2)});
  const ExperimentResult t2 = RunTwoPlExperiment(scarce, policy);
  table2.PrintRow({"strict 2PL", bench::Num(t2.run.committed, 0),
                   bench::Num(t2.run.aborted, 0),
                   bench::Num(t2.run.AbortPercent(), 2)});
  const ExperimentResult o2 = RunOccExperiment(scarce, false);
  table2.PrintRow({"freeze/OCC", bench::Num(o2.run.committed, 0),
                   bench::Num(o2.run.aborted, 0),
                   bench::Num(o2.run.AbortPercent(), 2)});
  return 0;
}
