// Ablation: starvation guard (paper Sec. VII mitigation 1). A stream of
// mutually-compatible subtractions can starve a waiting assignment forever;
// the lock-deny threshold forces newcomers to queue once enough
// incompatible waiters have piled up. We sweep the threshold and measure
// the assignments' waiting time against total throughput.

#include <cstdio>

#include "bench_util.h"
#include "workload/gtm_experiment.h"

int main(int argc, char** argv) {
  using namespace preserial;
  using workload::ExperimentResult;
  using workload::GtmExperimentSpec;

  const bench::ObsFlags obs = bench::ParseObsFlags(argc, argv);
  GtmExperimentSpec spec;
  spec.num_txns = 1000;
  spec.num_objects = 2;       // Hot objects: heavy contention.
  spec.alpha = 0.9;           // Mostly subtractions, few assignments.
  spec.beta = 0.0;
  spec.interarrival = 0.25;   // Arrivals overlap heavily with 4 s work.
  spec.work_time = 4.0;
  spec.seed = 42;

  bench::Banner(
      "Ablation: starvation guard threshold (hot objects, alpha=0.9)");
  bench::TablePrinter table({"threshold", "avg exec", "p99 exec",
                             "max exec", "starv denials", "waits"},
                            14);
  table.PrintHeader();
  for (int threshold : {0, 1, 2, 4, 8}) {
    gtm::GtmOptions options;
    options.starvation_waiter_threshold = threshold;
    const ExperimentResult r = RunGtmExperiment(spec, options);
    table.PrintRow({bench::Num(threshold, 0),
                    bench::Num(r.run.AvgLatency(), 3),
                    bench::Num(r.run.latency_committed.p99(), 3),
                    bench::Num(r.run.latency_committed.Percentile(1.0), 3),
                    bench::Num(r.starvation_denials, 0),
                    bench::Num(r.waits, 0)});
  }
  std::puts(
      "\nshape check: threshold 0 (guard off) lets compatible newcomers "
      "stream past queued assignments, inflating tail latency; small "
      "thresholds cap the tail at some cost in mean latency.");

  if (obs.enabled()) {
    GtmExperimentSpec traced_spec = spec;
    traced_spec.trace_capacity = obs.trace_capacity;
    gtm::GtmOptions options;
    options.starvation_waiter_threshold = 2;
    const ExperimentResult traced = RunGtmExperiment(traced_spec, options);
    bench::WriteObsOutputs(obs, traced.trace_events, traced.snapshot);
  }
  return 0;
}
