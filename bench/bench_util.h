#ifndef PRESERIAL_BENCH_BENCH_UTIL_H_
#define PRESERIAL_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "gtm/metrics.h"
#include "gtm/trace.h"
#include "obs/export.h"

namespace preserial::bench {

// Minimal fixed-width table printer shared by the experiment harnesses.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, size_t width = 14)
      : headers_(std::move(headers)), width_(width) {}

  void PrintHeader() const {
    std::string line;
    for (const std::string& h : headers_) line += PadLeft(h, width_);
    std::puts(line.c_str());
    std::puts(std::string(width_ * headers_.size(), '-').c_str());
  }

  void PrintRow(const std::vector<std::string>& cells) const {
    std::string line;
    for (const std::string& c : cells) line += PadLeft(c, width_);
    std::puts(line.c_str());
  }

 private:
  std::vector<std::string> headers_;
  size_t width_;
};

inline std::string Num(double v, int precision = 4) {
  return StrFormat("%.*f", precision, v);
}

inline void Banner(const std::string& title) {
  std::puts("");
  std::puts(("== " + title + " ==").c_str());
}

// Buffering emitter for the machine-readable mirror a bench prints after
// its tables: one `JSON: {"bench":"<name>", ...,"rows":[{...},...]}` line.
// Commas are managed automatically; nesting via BeginObject/EndObject.
// Rows accumulate in memory and Finish() prints the line, so JSON building
// can interleave with table printing (see Report below).
//
//   JsonRows json("ablation_foo");
//   for (...) {
//     json.BeginRow();
//     json.Num("x", x, 2);
//     json.BeginObject("inner");
//     json.Int("committed", n);
//     json.EndObject();
//     json.EndRow();
//   }
//   json.Finish();
class JsonRows {
 public:
  explicit JsonRows(const std::string& bench_name) {
    out_ = StrFormat("\nJSON: {\"bench\":\"%s\",\"rows\":[",
                     bench_name.c_str());
  }

  void BeginRow() {
    if (row_count_++ > 0) out_ += ",";
    out_ += "{";
    first_.assign(1, true);
  }
  void EndRow() {
    out_ += "}";
    first_.clear();
  }

  void BeginObject(const std::string& key) {
    Key(key);
    out_ += "{";
    first_.push_back(true);
  }
  void EndObject() {
    out_ += "}";
    first_.pop_back();
  }

  void Int(const std::string& key, int64_t v) {
    Key(key);
    out_ += StrFormat("%lld", static_cast<long long>(v));
  }
  void Num(const std::string& key, double v, int precision = 4) {
    Key(key);
    out_ += StrFormat("%.*f", precision, v);
  }
  void Str(const std::string& key, const std::string& v) {
    Key(key);
    out_ += StrFormat("\"%s\"", v.c_str());
  }

  void Finish() {
    out_ += "]}";
    std::puts(out_.c_str());
    out_.clear();
  }

 private:
  void Key(const std::string& key) {
    if (!first_.back()) out_ += ",";
    first_.back() = false;
    out_ += StrFormat("\"%s\":", key.c_str());
  }

  std::string out_;
  size_t row_count_ = 0;
  std::vector<bool> first_;
};

// The one writer behind every ablation bench: each row is built once and
// lands in both the human table and the JSON mirror — no per-bench
// buffer-structs or second emit loop. Table columns and JSON fields can
// still diverge where they should (derived percentages in the table,
// nested raw counters in the JSON) via the TableOnly / Json* escapes.
//
//   Report report("ablation_foo");
//   report.Section("Ablation: foo", {"x", "commit%"}, 14);
//   for (...) {
//     report.BeginRow();
//     report.Num("x", x, 2);                      // table cell + JSON field
//     report.TableOnly(Num(pct, 2));              // table cell only
//     report.JsonInt("committed", n);             // JSON field only
//     report.EndRow();                            // prints the table row
//   }
//   report.Note("shape check: ...");
//   report.Finish();                              // prints the JSON line
class Report {
 public:
  explicit Report(const std::string& bench_name) : json_(bench_name) {}

  // Starts a table: banner + header. Multiple sections share one JSON
  // stream (tag rows with a discriminating field, e.g. Str("mode", ...)).
  void Section(const std::string& title, std::vector<std::string> headers,
               size_t width = 14) {
    Banner(title);
    table_ = TablePrinter(std::move(headers), width);
    table_.PrintHeader();
  }

  void BeginRow() {
    cells_.clear();
    json_.BeginRow();
  }
  void EndRow() {
    json_.EndRow();
    table_.PrintRow(cells_);
  }

  // Both table and JSON.
  void Int(const std::string& key, int64_t v) {
    cells_.push_back(StrFormat("%lld", static_cast<long long>(v)));
    json_.Int(key, v);
  }
  void Num(const std::string& key, double v, int precision = 4) {
    cells_.push_back(bench::Num(v, precision));
    json_.Num(key, v, precision);
  }
  void Str(const std::string& key, const std::string& v) {
    cells_.push_back(v);
    json_.Str(key, v);
  }

  // Table only (derived display values).
  void TableOnly(const std::string& cell) { cells_.push_back(cell); }

  // JSON only (raw counters, nested breakdowns).
  void JsonInt(const std::string& key, int64_t v) { json_.Int(key, v); }
  void JsonNum(const std::string& key, double v, int precision = 4) {
    json_.Num(key, v, precision);
  }
  void JsonStr(const std::string& key, const std::string& v) {
    json_.Str(key, v);
  }
  void BeginObject(const std::string& key) { json_.BeginObject(key); }
  void EndObject() { json_.EndObject(); }

  void Note(const std::string& text) {
    std::puts("");
    std::puts(text.c_str());
  }

  void Finish() { json_.Finish(); }

 private:
  JsonRows json_;
  TablePrinter table_{{}};
  std::vector<std::string> cells_;
};

// Observability flags shared by every bench binary:
//   --trace[=N]       enable trace logs with capacity N (default 4096)
//   --obs-out=PREFIX  write PREFIX.trace.json (Chrome trace_event),
//                     PREFIX.metrics.prom (Prometheus text) and
//                     PREFIX.events.jsonl after the run; implies --trace
struct ObsFlags {
  size_t trace_capacity = 0;  // 0 = tracing off.
  std::string out_prefix;     // Empty = no files written.

  bool enabled() const { return trace_capacity > 0; }
};

inline ObsFlags ParseObsFlags(int argc, char** argv) {
  ObsFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      flags.trace_capacity = 4096;
    } else if (arg.rfind("--trace=", 0) == 0) {
      flags.trace_capacity =
          static_cast<size_t>(std::strtoull(arg.c_str() + 8, nullptr, 10));
    } else if (arg.rfind("--obs-out=", 0) == 0) {
      flags.out_prefix = arg.substr(10);
      if (flags.trace_capacity == 0) flags.trace_capacity = 4096;
    }
  }
  return flags;
}

inline bool WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open %s\n", path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

// Writes the three exporter outputs for one traced run. No-op without
// --obs-out.
inline void WriteObsOutputs(const ObsFlags& flags,
                            const std::vector<gtm::TraceEvent>& events,
                            const gtm::GtmMetrics::Snapshot& snapshot) {
  if (flags.out_prefix.empty()) return;
  WriteTextFile(flags.out_prefix + ".trace.json", obs::ToChromeTrace(events));
  WriteTextFile(flags.out_prefix + ".metrics.prom",
                obs::ToPrometheus(snapshot));
  WriteTextFile(flags.out_prefix + ".events.jsonl", obs::ToJsonl(events));
  std::fprintf(stderr, "obs: wrote %s.{trace.json,metrics.prom,events.jsonl} (%zu events)\n",
               flags.out_prefix.c_str(), events.size());
}

}  // namespace preserial::bench

#endif  // PRESERIAL_BENCH_BENCH_UTIL_H_
