#ifndef PRESERIAL_BENCH_BENCH_UTIL_H_
#define PRESERIAL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"

namespace preserial::bench {

// Minimal fixed-width table printer shared by the experiment harnesses.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, size_t width = 14)
      : headers_(std::move(headers)), width_(width) {}

  void PrintHeader() const {
    std::string line;
    for (const std::string& h : headers_) line += PadLeft(h, width_);
    std::puts(line.c_str());
    std::puts(std::string(width_ * headers_.size(), '-').c_str());
  }

  void PrintRow(const std::vector<std::string>& cells) const {
    std::string line;
    for (const std::string& c : cells) line += PadLeft(c, width_);
    std::puts(line.c_str());
  }

 private:
  std::vector<std::string> headers_;
  size_t width_;
};

inline std::string Num(double v, int precision = 4) {
  return StrFormat("%.*f", precision, v);
}

inline void Banner(const std::string& title) {
  std::puts("");
  std::puts(("== " + title + " ==").c_str());
}

// Streaming emitter for the machine-readable mirror a bench prints after
// its table: one `JSON: {"bench":"<name>", ...,"rows":[{...},...]}` line.
// Commas are managed automatically; nesting via BeginObject/EndObject.
//
//   JsonRows json("ablation_foo");
//   for (...) {
//     json.BeginRow();
//     json.Num("x", x, 2);
//     json.BeginObject("inner");
//     json.Int("committed", n);
//     json.EndObject();
//     json.EndRow();
//   }
//   json.Finish();
class JsonRows {
 public:
  explicit JsonRows(const std::string& bench_name) {
    std::printf("\nJSON: {\"bench\":\"%s\",\"rows\":[", bench_name.c_str());
  }

  void BeginRow() {
    if (row_count_++ > 0) std::printf(",");
    std::printf("{");
    first_.assign(1, true);
  }
  void EndRow() {
    std::printf("}");
    first_.clear();
  }

  void BeginObject(const std::string& key) {
    Key(key);
    std::printf("{");
    first_.push_back(true);
  }
  void EndObject() {
    std::printf("}");
    first_.pop_back();
  }

  void Int(const std::string& key, int64_t v) {
    Key(key);
    std::printf("%lld", static_cast<long long>(v));
  }
  void Num(const std::string& key, double v, int precision = 4) {
    Key(key);
    std::printf("%.*f", precision, v);
  }
  void Str(const std::string& key, const std::string& v) {
    Key(key);
    std::printf("\"%s\"", v.c_str());
  }

  void Finish() { std::printf("]}\n"); }

 private:
  void Key(const std::string& key) {
    if (!first_.back()) std::printf(",");
    first_.back() = false;
    std::printf("\"%s\":", key.c_str());
  }

  size_t row_count_ = 0;
  std::vector<bool> first_;
};

}  // namespace preserial::bench

#endif  // PRESERIAL_BENCH_BENCH_UTIL_H_
