#ifndef PRESERIAL_BENCH_BENCH_UTIL_H_
#define PRESERIAL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"

namespace preserial::bench {

// Minimal fixed-width table printer shared by the experiment harnesses.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, size_t width = 14)
      : headers_(std::move(headers)), width_(width) {}

  void PrintHeader() const {
    std::string line;
    for (const std::string& h : headers_) line += PadLeft(h, width_);
    std::puts(line.c_str());
    std::puts(std::string(width_ * headers_.size(), '-').c_str());
  }

  void PrintRow(const std::vector<std::string>& cells) const {
    std::string line;
    for (const std::string& c : cells) line += PadLeft(c, width_);
    std::puts(line.c_str());
  }

 private:
  std::vector<std::string> headers_;
  size_t width_;
};

inline std::string Num(double v, int precision = 4) {
  return StrFormat("%.*f", precision, v);
}

inline void Banner(const std::string& title) {
  std::puts("");
  std::puts(("== " + title + " ==").c_str());
}

}  // namespace preserial::bench

#endif  // PRESERIAL_BENCH_BENCH_UTIL_H_
