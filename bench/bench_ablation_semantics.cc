// Ablation: semantic sharing on/off. With sharing off the GTM degenerates
// to an exclusive-lock middleware (only read/read shares) — isolating how
// much of the win comes from the compatibility theory itself.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "workload/gtm_experiment.h"

int main(int argc, char** argv) {
  using namespace preserial;
  using workload::ExperimentResult;
  using workload::GtmExperimentSpec;

  GtmExperimentSpec base;
  base.num_txns = 1000;
  base.num_objects = 5;
  base.beta = 0.05;
  base.interarrival = 0.5;
  base.work_time = 2.0;
  base.seed = 42;

  gtm::GtmOptions with_sharing;
  with_sharing.semantic_sharing = true;
  gtm::GtmOptions without_sharing;
  without_sharing.semantic_sharing = false;

  bench::Banner(
      "Ablation: semantic sharing (avg exec time s / waits vs alpha)");
  bench::TablePrinter table({"alpha", "share exec", "share waits",
                             "excl exec", "excl waits", "speedup"},
                            13);
  table.PrintHeader();
  for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    GtmExperimentSpec spec = base;
    spec.alpha = alpha;
    const ExperimentResult on = RunGtmExperiment(spec, with_sharing);
    const ExperimentResult off = RunGtmExperiment(spec, without_sharing);
    table.PrintRow({bench::Num(alpha, 1), bench::Num(on.run.AvgLatency(), 3),
                    bench::Num(on.waits, 0),
                    bench::Num(off.run.AvgLatency(), 3),
                    bench::Num(off.waits, 0),
                    bench::Num(off.run.AvgLatency() /
                                   std::max(1e-9, on.run.AvgLatency()),
                               2)});
  }
  std::puts(
      "\nshape check: the speedup from semantic sharing grows with alpha "
      "(more mutually-compatible subtractions).");

  const bench::ObsFlags obs = bench::ParseObsFlags(argc, argv);
  if (obs.enabled()) {
    GtmExperimentSpec spec = base;
    spec.trace_capacity = obs.trace_capacity;
    const ExperimentResult traced = RunGtmExperiment(spec, with_sharing);
    bench::WriteObsOutputs(obs, traced.trace_events, traced.snapshot);
  }
  return 0;
}
