// Ablation: shard count x cross-shard ratio for the partitioned GTM
// cluster. Two parts:
//
//  1. Wall-clock scaling: one worker thread per shard hammers the threaded
//     ClusterService with single-object bookings (all compatible
//     subtractions); a --cross-shard-ratio fraction books a second object
//     on another shard and commits through the coordinator's 2PC. At ratio
//     0 the shards share nothing, so committed-transaction throughput
//     should scale with the shard count.
//  2. Simulated workload: the Sec. VI-B arrival sequence (disconnections
//     included) against RunShardedGtmExperiment in virtual time, reporting
//     commit rates, coordinator outcomes and per-shard abort attribution.
//
// Knobs: --shards=1,2,4 (comma list of shard counts) and
// --cross-shard-ratio=0,0.2 (comma list of ratios). Emits a JSON mirror of
// both tables after the text output.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/service.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/strings.h"
#include "workload/gtm_experiment.h"

namespace {

using namespace preserial;
using storage::ColumnDef;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

constexpr char kTable[] = "resources";
constexpr size_t kNumObjects = 64;
constexpr int kRunMillis = 250;  // Wall-clock measurement window per config.

std::vector<double> ParseDoubles(const char* list) {
  std::vector<double> out;
  for (const char* p = list; *p != '\0';) {
    char* end = nullptr;
    out.push_back(std::strtod(p, &end));
    if (end == p) break;
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

gtm::ObjectId ObjectIdFor(size_t i) { return StrFormat("%s/%zu", kTable, i); }

// Builds the cluster's tables/rows/objects: one two-column counter row per
// object, placed on its hash-owning shard.
void Populate(cluster::GtmCluster* gtm_cluster) {
  Result<Schema> schema = Schema::Create(
      {
          ColumnDef{"id", ValueType::kInt64, false},
          ColumnDef{"qty", ValueType::kInt64, false},
      },
      /*primary_key=*/0);
  PRESERIAL_CHECK(schema.ok());
  Status created =
      gtm_cluster->CreateTableAllShards(kTable, std::move(schema).value());
  PRESERIAL_CHECK(created.ok()) << created.ToString();
  for (size_t i = 0; i < kNumObjects; ++i) {
    const gtm::ObjectId oid = ObjectIdFor(i);
    const Value key = Value::Int(static_cast<int64_t>(i));
    Status s = gtm_cluster->db(gtm_cluster->ShardOf(oid))
                   ->InsertRow(kTable, Row({key, Value::Int(1000000000)}));
    PRESERIAL_CHECK(s.ok()) << s.ToString();
    s = gtm_cluster->RegisterObject(oid, kTable, key, {1});
    PRESERIAL_CHECK(s.ok()) << s.ToString();
  }
}

struct WallResult {
  size_t shards = 0;
  double ratio = 0;
  int64_t committed = 0;
  int64_t cross_committed = 0;
  double elapsed = 0;
  double Throughput() const { return elapsed > 0 ? committed / elapsed : 0; }
};

// Fixed pool of `num_workers` threads (the same pool for every shard
// count, so runs are comparable): worker w books on home shard w % S. With
// one shard every worker serializes on that shard's mutex; with more
// shards the pool spreads across independent lock domains, which is
// exactly the contention the partitioning removes — so committed
// throughput grows with S on multi-core hosts and still improves on a
// single core by shedding lock handoffs.
WallResult RunWallClock(size_t num_shards, double ratio, size_t num_workers) {
  SystemClock clock;
  cluster::GtmCluster gtm_cluster(num_shards, &clock);
  Populate(&gtm_cluster);
  storage::MemoryWalStorage wal;
  cluster::ClusterService service(&gtm_cluster, &wal);

  std::vector<std::vector<gtm::ObjectId>> owned(num_shards);
  for (size_t i = 0; i < kNumObjects; ++i) {
    const gtm::ObjectId oid = ObjectIdFor(i);
    owned[gtm_cluster.ShardOf(oid)].push_back(oid);
  }

  const semantics::Operation book = semantics::Operation::Sub(Value::Int(1));
  std::atomic<bool> stop{false};
  std::vector<int64_t> committed(num_workers, 0);
  std::vector<int64_t> cross(num_workers, 0);
  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    workers.emplace_back([&, w] {
      const cluster::ShardId s = w % num_shards;
      if (owned[s].empty()) return;
      Rng rng(0xabc0 + w);
      int64_t local = 0, local_cross = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const gtm::ObjectId& oid = owned[s][rng.NextBounded(owned[s].size())];
        const TxnId b = service.Begin(s);
        if (!service.Invoke(s, b, oid, 0, book).ok()) {
          (void)service.RequestAbort(s, b);
          continue;
        }
        cluster::ShardId other = s;
        if (num_shards > 1 && rng.NextBool(ratio)) {
          other = (s + 1 + rng.NextBounded(num_shards - 1)) % num_shards;
          if (owned[other].empty()) other = s;
        }
        if (other == s) {
          if (service.RequestCommit(s, b).ok()) ++local;
          continue;
        }
        const gtm::ObjectId& oid2 =
            owned[other][rng.NextBounded(owned[other].size())];
        const TxnId b2 = service.Begin(other);
        if (!service.Invoke(other, b2, oid2, 0, book).ok()) {
          (void)service.RequestAbort(other, b2);
          (void)service.RequestAbort(s, b);
          continue;
        }
        if (service.CommitGlobal({{s, b}, {other, b2}}).ok()) {
          ++local;
          ++local_cross;
        }
      }
      committed[w] = local;
      cross[w] = local_cross;
    });
  }
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(kRunMillis));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : workers) w.join();
  const auto end = std::chrono::steady_clock::now();

  WallResult r;
  r.shards = num_shards;
  r.ratio = ratio;
  r.elapsed = std::chrono::duration<double>(end - start).count();
  for (size_t w = 0; w < num_workers; ++w) {
    r.committed += committed[w];
    r.cross_committed += cross[w];
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsFlags obs = bench::ParseObsFlags(argc, argv);
  std::vector<size_t> shard_counts = {1, 2, 4};
  std::vector<double> ratios = {0.0, 0.2};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shard_counts.clear();
      for (double v : ParseDoubles(argv[i] + 9)) {
        if (v >= 1) shard_counts.push_back(static_cast<size_t>(v));
      }
    } else if (std::strncmp(argv[i], "--cross-shard-ratio=", 20) == 0) {
      ratios = ParseDoubles(argv[i] + 20);
    } else if (std::strncmp(argv[i], "--trace", 7) == 0 ||
               std::strncmp(argv[i], "--obs-out=", 10) == 0) {
      // Handled by ParseObsFlags above.
    } else {
      std::fprintf(stderr,
                   "usage: %s [--shards=1,2,4] [--cross-shard-ratio=0,0.2] "
                   "[--trace[=N]] [--obs-out=PREFIX]\n",
                   argv[0]);
      return 2;
    }
  }
  PRESERIAL_CHECK(!shard_counts.empty() && !ratios.empty());

  // One writer for both tables and the JSON mirror; the two parts share the
  // JSON stream, discriminated by the "mode" field. Simulated rows carry
  // per-shard breakdowns: each shard's commit counter and the aborts
  // attributed to the shard that raised them (aborted_by_tag_shard).
  bench::Report report("ablation_shards");

  // --- part 1: wall-clock scaling over the threaded ClusterService ---------
  size_t num_workers = 1;
  for (size_t s : shard_counts) num_workers = std::max(num_workers, s);
  report.Section(
      StrFormat(
          "Ablation: shard count — wall-clock throughput (%zu worker threads)",
          num_workers),
      {"shards", "xshard ratio", "committed", "xshard txns", "txn/s",
       "speedup"},
      14);
  std::vector<double> base_rate(ratios.size(), 0.0);
  for (size_t s_idx = 0; s_idx < shard_counts.size(); ++s_idx) {
    for (size_t r_idx = 0; r_idx < ratios.size(); ++r_idx) {
      const WallResult r =
          RunWallClock(shard_counts[s_idx], ratios[r_idx], num_workers);
      if (shard_counts[s_idx] == shard_counts.front()) {
        base_rate[r_idx] = r.Throughput();
      }
      const double speedup =
          base_rate[r_idx] > 0 ? r.Throughput() / base_rate[r_idx] : 0.0;
      report.BeginRow();
      report.JsonStr("mode", "wallclock");
      report.TableOnly(bench::Num(r.shards, 0));
      report.JsonInt("shards", static_cast<int64_t>(r.shards));
      report.Num("cross_shard_ratio", r.ratio, 2);
      report.Int("committed", r.committed);
      report.Int("cross_shard_committed", r.cross_committed);
      report.JsonNum("elapsed_s", r.elapsed, 4);
      report.TableOnly(bench::Num(r.Throughput(), 0));
      report.JsonNum("throughput", r.Throughput(), 1);
      report.TableOnly(bench::Num(speedup, 2));
      report.EndRow();
    }
  }
  report.Note(
      "shape check: at ratio 0 the shards share nothing and throughput "
      "grows with the shard count; cross-shard transactions pay two "
      "prepares plus the serialized coordinator, flattening the curve.");

  // --- part 2: simulated Sec. VI-B workload over the router ----------------
  report.Section("Ablation: cross-shard ratio — simulated workload (2PC)",
                 {"shards", "xshard ratio", "commit%", "xshard planned",
                  "2pc commits", "2pc aborts", "consumed"},
                 15);
  for (size_t num_shards : shard_counts) {
    for (double ratio : ratios) {
      workload::ShardedExperimentSpec spec;
      spec.base.num_txns = 600;
      spec.base.num_objects = 32;
      spec.base.alpha = 0.8;
      spec.base.beta = 0.05;
      spec.base.seed = 42;
      spec.num_shards = num_shards;
      spec.cross_shard_ratio = ratio;
      const workload::ShardedExperimentResult r =
          RunShardedGtmExperiment(spec);
      const double n = static_cast<double>(spec.base.num_txns);
      report.BeginRow();
      report.JsonStr("mode", "simulated");
      report.TableOnly(bench::Num(num_shards, 0));
      report.JsonInt("shards", static_cast<int64_t>(num_shards));
      report.Num("cross_shard_ratio", ratio, 2);
      report.TableOnly(bench::Num(100.0 * r.run.committed / n, 2));
      report.JsonInt("committed", r.run.committed);
      report.JsonInt("aborted", r.run.aborted);
      report.Int("cross_shard_planned", r.cross_shard_planned);
      report.TableOnly(bench::Num(r.coordinator.commits, 0));
      report.TableOnly(bench::Num(r.coordinator.aborts, 0));
      report.Int("quantity_consumed", r.quantity_consumed);
      report.BeginObject("coordinator");
      report.JsonInt("commits", r.coordinator.commits);
      report.JsonInt("aborts", r.coordinator.aborts);
      report.JsonInt("prepare_failures", r.coordinator.prepare_failures);
      report.EndObject();
      report.BeginObject("committed_by_shard");
      for (size_t s = 0; s < r.shard_snapshots.size(); ++s) {
        report.JsonInt(StrFormat("%zu", s),
                       r.shard_snapshots[s].counters.committed);
      }
      report.EndObject();
      report.BeginObject("aborted_by_shard");
      for (size_t s = 0; s < r.shard_snapshots.size(); ++s) {
        int64_t aborts = 0;
        for (const auto& [tag_shard, count] : r.run.aborted_by_tag_shard) {
          if (tag_shard.second == static_cast<int>(s)) aborts += count;
        }
        report.JsonInt(StrFormat("%zu", s), aborts);
      }
      report.EndObject();
      report.EndRow();
    }
  }
  report.Finish();

  if (obs.enabled()) {
    workload::ShardedExperimentSpec spec;
    spec.base.num_txns = 600;
    spec.base.num_objects = 32;
    spec.base.alpha = 0.8;
    spec.base.beta = 0.05;
    spec.base.seed = 42;
    spec.base.trace_capacity = obs.trace_capacity;
    spec.num_shards = 4;
    spec.cross_shard_ratio = 0.2;
    const workload::ShardedExperimentResult traced =
        RunShardedGtmExperiment(spec);
    bench::WriteObsOutputs(obs, traced.trace_events, traced.aggregate);
  }
  return 0;
}
