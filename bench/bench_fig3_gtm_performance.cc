// Regenerates paper Fig. 3 ("GTM performances"), Sec. VI-B: 1000
// transactions, 5 database objects, 0.5 s interarrival, uniform gamma.
//   Left panel : average execution time vs. alpha (subtraction
//                probability), beta = 0.05.
//   Right panel: abort percentage vs. beta (disconnection probability),
//                alpha = 0.7.
// The strict-2PL baseline runs the identical arrival sequence for
// comparison (the paper's emulation compared against classical 2PL).

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "workload/gtm_experiment.h"

int main() {
  using namespace preserial;
  using workload::ExperimentResult;
  using workload::GtmExperimentSpec;
  using workload::TwoPlPolicy;

  GtmExperimentSpec base;
  base.num_txns = 1000;
  base.num_objects = 5;
  base.interarrival = 0.5;
  base.work_time = 2.0;
  base.disconnect_mean = 10.0;
  base.seed = 42;

  TwoPlPolicy policy;
  policy.lock_wait_timeout = 30.0;
  policy.idle_timeout = 30.0;

  bench::Banner(
      "Fig. 3 left: avg execution time (s) vs alpha, beta = 0.05");
  bench::TablePrinter left({"alpha", "GTM avg exec", "GTM book", "GTM admin",
                            "GTM waits", "GTM shared", "2PL avg exec",
                            "2PL waits"},
                           13);
  left.PrintHeader();
  auto tag_mean = [](const ExperimentResult& r, int tag) {
    auto it = r.run.latency_by_tag.find(tag);
    return it == r.run.latency_by_tag.end() ? 0.0 : it->second.mean();
  };
  for (double alpha : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    GtmExperimentSpec spec = base;
    spec.alpha = alpha;
    spec.beta = 0.05;
    const ExperimentResult g = RunGtmExperiment(spec);
    const ExperimentResult t = RunTwoPlExperiment(spec, policy);
    left.PrintRow({bench::Num(alpha, 1), bench::Num(g.run.AvgLatency(), 3),
                   bench::Num(tag_mean(g, workload::kTagSubtract), 3),
                   bench::Num(tag_mean(g, workload::kTagAssign), 3),
                   bench::Num(g.waits, 0), bench::Num(g.shared_grants, 0),
                   bench::Num(t.run.AvgLatency(), 3),
                   bench::Num(t.waits, 0)});
  }
  std::puts(
      "\nshape check: more subtractions (higher alpha) => more compatible "
      "sharing => GTM latency falls toward the ideal work time, while 2PL "
      "keeps serializing.");

  bench::Banner("Fig. 3 right: abort % vs beta, alpha = 0.7");
  bench::TablePrinter right({"beta", "GTM abort%", "GTM awake-aborts",
                             "2PL abort%", "2PL disc-aborts%"},
                            17);
  right.PrintHeader();
  for (double beta : {0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    GtmExperimentSpec spec = base;
    spec.alpha = 0.7;
    spec.beta = beta;
    const ExperimentResult g = RunGtmExperiment(spec);
    const ExperimentResult t = RunTwoPlExperiment(spec, policy);
    right.PrintRow({bench::Num(beta, 2),
                    bench::Num(g.run.AbortPercent(), 2),
                    bench::Num(g.awake_aborts, 0),
                    bench::Num(t.run.AbortPercent(), 2),
                    bench::Num(t.run.DisconnectedAbortPercent(), 2)});
  }
  std::puts(
      "\nshape check: GTM aborts only the sleepers hit by an incompatible "
      "commit (grows slowly with beta); 2PL preventively aborts "
      "long-disconnected holders and times out their victims.");

  bench::Banner("Seed sensitivity (5 seeds per point, beta = 0.05)");
  bench::TablePrinter seeds({"alpha", "GTM mean±sd (s)", "2PL mean±sd (s)"},
                            20);
  seeds.PrintHeader();
  for (double alpha : {0.3, 0.7}) {
    RunningStat gtm_stat;
    RunningStat tpl_stat;
    for (uint64_t seed = 42; seed < 47; ++seed) {
      GtmExperimentSpec spec = base;
      spec.alpha = alpha;
      spec.beta = 0.05;
      spec.seed = seed;
      gtm_stat.Add(RunGtmExperiment(spec).run.AvgLatency());
      tpl_stat.Add(RunTwoPlExperiment(spec, policy).run.AvgLatency());
    }
    seeds.PrintRow({bench::Num(alpha, 1),
                    bench::Num(gtm_stat.mean(), 3) + " ± " +
                        bench::Num(gtm_stat.stddev(), 3),
                    bench::Num(tpl_stat.mean(), 3) + " ± " +
                        bench::Num(tpl_stat.stddev(), 3)});
  }
  std::puts(
      "\nthe GTM/2PL separation is far wider than the across-seed spread: "
      "the Fig. 3 shapes are not sampling artifacts.");
  return 0;
}
