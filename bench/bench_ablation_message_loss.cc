// Ablation: message loss on the client<->GTM channel. Every request and
// reply crosses a channel that drops, duplicates and reorders messages;
// clients retry with exponential backoff against the GTM's idempotent
// endpoints. Sweeps the loss rate and compares the paper's discipline —
// degrade an unresponsive client to Sleep and resume later (Algorithms
// 7-10) — against the naive baseline that aborts once the retry budget is
// spent. Emits the same comparison as JSON after the table.

#include <cstdio>

#include "bench_util.h"
#include "workload/gtm_experiment.h"

int main(int argc, char** argv) {
  using namespace preserial;
  using workload::ChannelSpec;
  using workload::GtmExperimentSpec;
  using workload::LossyExperimentResult;

  const bench::ObsFlags obs = bench::ParseObsFlags(argc, argv);
  GtmExperimentSpec base;
  base.num_txns = 800;
  base.num_objects = 5;
  base.alpha = 0.7;
  base.beta = 0.0;  // Outages come from the channel, not the plan.
  base.interarrival = 0.5;
  base.work_time = 2.0;
  base.seed = 42;

  ChannelSpec channel;
  channel.duplicate = 0.1;
  channel.reorder = 0.1;
  channel.delay_mean = 0.05;
  channel.request_timeout = 1.0;
  channel.max_attempts = 3;
  channel.reconnect_delay = 5.0;

  const double loss_rates[] = {0.0, 0.1, 0.2, 0.3, 0.4};

  bench::Report report("ablation_message_loss");
  report.Section(
      "Ablation: channel loss rate — degrade-to-Sleep vs abort-on-loss",
      {"loss", "sleep commit%", "abort commit%", "retries", "degrades",
       "dedup hits"},
      14);
  for (double loss : loss_rates) {
    ChannelSpec c = channel;
    c.loss = loss;
    c.degrade_to_sleep = true;
    const LossyExperimentResult degrade = RunLossyGtmExperiment(base, c);
    c.degrade_to_sleep = false;
    const LossyExperimentResult naive = RunLossyGtmExperiment(base, c);
    const double n = static_cast<double>(base.num_txns);
    report.BeginRow();
    report.Num("loss", loss, 2);
    report.TableOnly(bench::Num(100.0 * degrade.run.committed / n, 2));
    report.TableOnly(bench::Num(100.0 * naive.run.committed / n, 2));
    report.TableOnly(bench::Num(degrade.run.retries, 0));
    report.TableOnly(bench::Num(degrade.run.degraded_to_sleep, 0));
    report.TableOnly(bench::Num(degrade.duplicates_suppressed, 0));
    report.BeginObject("degrade_to_sleep");
    report.JsonInt("committed", degrade.run.committed);
    report.JsonInt("aborted", degrade.run.aborted);
    report.JsonInt("retries", degrade.run.retries);
    report.JsonInt("degrades", degrade.run.degraded_to_sleep);
    report.JsonInt("duplicates_suppressed", degrade.duplicates_suppressed);
    report.JsonInt("channel_dropped", degrade.channel.dropped);
    report.EndObject();
    report.BeginObject("abort_on_loss");
    report.JsonInt("committed", naive.run.committed);
    report.JsonInt("aborted", naive.run.aborted);
    report.JsonInt("retries", naive.run.retries);
    report.EndObject();
    report.EndRow();
  }

  report.Note(
      "shape check: loss leaves the degrade-to-Sleep commit rate nearly "
      "flat (silent requests park and resume) while abort-on-loss decays "
      "with the chance that some request exhausts its budget.");
  report.Finish();

  if (obs.enabled()) {
    GtmExperimentSpec spec = base;
    spec.trace_capacity = obs.trace_capacity;
    ChannelSpec c = channel;
    c.loss = 0.3;
    c.degrade_to_sleep = true;
    const LossyExperimentResult traced = RunLossyGtmExperiment(spec, c);
    bench::WriteObsOutputs(obs, traced.trace_events, traced.snapshot);
  }
  return 0;
}
