// Ablation: message loss on the client<->GTM channel. Every request and
// reply crosses a channel that drops, duplicates and reorders messages;
// clients retry with exponential backoff against the GTM's idempotent
// endpoints. Sweeps the loss rate and compares the paper's discipline —
// degrade an unresponsive client to Sleep and resume later (Algorithms
// 7-10) — against the naive baseline that aborts once the retry budget is
// spent. Emits the same comparison as JSON after the table.

#include <cstdio>

#include "bench_util.h"
#include "workload/gtm_experiment.h"

int main() {
  using namespace preserial;
  using workload::ChannelSpec;
  using workload::GtmExperimentSpec;
  using workload::LossyExperimentResult;

  GtmExperimentSpec base;
  base.num_txns = 800;
  base.num_objects = 5;
  base.alpha = 0.7;
  base.beta = 0.0;  // Outages come from the channel, not the plan.
  base.interarrival = 0.5;
  base.work_time = 2.0;
  base.seed = 42;

  ChannelSpec channel;
  channel.duplicate = 0.1;
  channel.reorder = 0.1;
  channel.delay_mean = 0.05;
  channel.request_timeout = 1.0;
  channel.max_attempts = 3;
  channel.reconnect_delay = 5.0;

  const double loss_rates[] = {0.0, 0.1, 0.2, 0.3, 0.4};

  bench::Banner(
      "Ablation: channel loss rate — degrade-to-Sleep vs abort-on-loss");
  bench::TablePrinter table({"loss", "sleep commit%", "abort commit%",
                             "retries", "degrades", "dedup hits"},
                            14);
  table.PrintHeader();

  struct RowOut {
    double loss;
    LossyExperimentResult degrade;
    LossyExperimentResult naive;
  };
  std::vector<RowOut> rows;
  for (double loss : loss_rates) {
    ChannelSpec c = channel;
    c.loss = loss;
    c.degrade_to_sleep = true;
    const LossyExperimentResult degrade = RunLossyGtmExperiment(base, c);
    c.degrade_to_sleep = false;
    const LossyExperimentResult naive = RunLossyGtmExperiment(base, c);
    const double n = static_cast<double>(base.num_txns);
    table.PrintRow({bench::Num(loss, 2),
                    bench::Num(100.0 * degrade.run.committed / n, 2),
                    bench::Num(100.0 * naive.run.committed / n, 2),
                    bench::Num(degrade.run.retries, 0),
                    bench::Num(degrade.run.degraded_to_sleep, 0),
                    bench::Num(degrade.duplicates_suppressed, 0)});
    rows.push_back({loss, degrade, naive});
  }

  std::puts(
      "\nshape check: loss leaves the degrade-to-Sleep commit rate nearly "
      "flat (silent requests park and resume) while abort-on-loss decays "
      "with the chance that some request exhausts its budget.");

  // Machine-readable mirror of the table.
  bench::JsonRows json("ablation_message_loss");
  for (const RowOut& r : rows) {
    json.BeginRow();
    json.Num("loss", r.loss, 2);
    json.BeginObject("degrade_to_sleep");
    json.Int("committed", r.degrade.run.committed);
    json.Int("aborted", r.degrade.run.aborted);
    json.Int("retries", r.degrade.run.retries);
    json.Int("degrades", r.degrade.run.degraded_to_sleep);
    json.Int("duplicates_suppressed", r.degrade.duplicates_suppressed);
    json.Int("channel_dropped", r.degrade.channel.dropped);
    json.EndObject();
    json.BeginObject("abort_on_loss");
    json.Int("committed", r.naive.run.committed);
    json.Int("aborted", r.naive.run.aborted);
    json.Int("retries", r.naive.run.retries);
    json.EndObject();
    json.EndRow();
  }
  json.Finish();
  return 0;
}
