// Ablation: wireless latency. Each request pays a sampled one-way delay
// before reaching the middleware ("lengthy transmission delay of some
// networks", paper Sec. I). Longer exposure windows mean transactions
// overlap more, so contention grows — much faster for 2PL (serialized
// writers) than for the GTM (compatible writers share).

#include <cstdio>

#include "bench_util.h"
#include "workload/gtm_experiment.h"

int main(int argc, char** argv) {
  using namespace preserial;
  using workload::ExperimentResult;
  using workload::GtmExperimentSpec;
  using workload::TwoPlPolicy;

  const bench::ObsFlags obs = bench::ParseObsFlags(argc, argv);
  GtmExperimentSpec base;
  base.num_txns = 800;
  base.num_objects = 5;
  base.alpha = 0.7;
  base.beta = 0.05;
  base.interarrival = 0.5;
  base.work_time = 2.0;
  base.seed = 42;

  TwoPlPolicy policy;
  policy.lock_wait_timeout = 30.0;
  policy.idle_timeout = 30.0;

  bench::Banner(
      "Ablation: mean one-way wireless latency (avg exec time / waits)");
  bench::TablePrinter table({"latency (s)", "GTM exec", "GTM waits",
                             "2PL exec", "2PL waits", "2PL abort%"},
                            13);
  table.PrintHeader();
  for (double latency : {0.0, 0.25, 0.5, 1.0, 2.0}) {
    GtmExperimentSpec spec = base;
    spec.network_delay_mean = latency;
    const ExperimentResult g = RunGtmExperiment(spec);
    const ExperimentResult t = RunTwoPlExperiment(spec, policy);
    table.PrintRow({bench::Num(latency, 2),
                    bench::Num(g.run.AvgLatency(), 3),
                    bench::Num(g.waits, 0),
                    bench::Num(t.run.AvgLatency(), 3),
                    bench::Num(t.waits, 0),
                    bench::Num(t.run.AbortPercent(), 2)});
  }
  std::puts(
      "\nshape check: latency stretches every transaction's lock-holding "
      "window; 2PL contention compounds while the GTM's compatible shares "
      "absorb it.");

  if (obs.enabled()) {
    GtmExperimentSpec spec = base;
    spec.network_delay_mean = 0.5;
    spec.trace_capacity = obs.trace_capacity;
    const ExperimentResult traced = RunGtmExperiment(spec);
    bench::WriteObsOutputs(obs, traced.trace_events, traced.snapshot);
  }
  return 0;
}
