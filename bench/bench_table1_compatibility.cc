// Regenerates paper Table I (class-of-operation compatibilities) from the
// implementation, and machine-checks it against Weihl forward commutativity
// on the state machine S(X).

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "semantics/commutativity.h"
#include "semantics/compatibility.h"

int main() {
  using namespace preserial;
  using namespace preserial::semantics;

  bench::Banner("Table I: class-of-operation compatibilities");
  std::fputs(CompatibilityTableString().c_str(), stdout);

  bench::Banner("Paper rendering (compatibility lists per class)");
  static constexpr OpClass kAll[] = {
      OpClass::kRead,         OpClass::kInsert,       OpClass::kDelete,
      OpClass::kUpdateAssign, OpClass::kUpdateAddSub, OpClass::kUpdateMulDiv,
  };
  for (OpClass row : kAll) {
    std::string list;
    for (OpClass col : kAll) {
      if (Compatible(row, col)) {
        if (!list.empty()) list += ", ";
        list += OpClassName(col);
      }
    }
    if (list.empty()) list = "(none)";
    std::printf("  %-16s <-> %s\n", OpClassName(row), list.c_str());
  }

  bench::Banner("Machine check vs. Weihl forward commutativity");
  Rng rng(2024);
  const Status s = VerifyCompatibilityTable(rng, /*samples_per_pair=*/256);
  if (s.ok()) {
    std::puts(
        "PASS: every declared-compatible pair forward-commutes on all probe"
        " states;\n      every declared-incompatible pair has a commutativity"
        " counterexample.");
  } else {
    std::printf("FAIL: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
