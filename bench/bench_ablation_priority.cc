// Ablation: transaction priorities (paper Sec. VII alternative to the
// lock-deny guard). A hot object carries a long queue of mutually
// incompatible assignments (they serialize, so the wait queue grows);
// admin transactions at elevated priority jump that queue. We compare the
// admins' latency with and without the boost.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/stats.h"
#include "gtm/gtm.h"
#include "storage/database.h"
#include "workload/gtm_experiment.h"
#include "workload/runner.h"

namespace {

using namespace preserial;
using storage::Row;
using storage::Value;

struct RunOutcome {
  Histogram admin_latency;
  Histogram booking_latency;
};

// Runs the hot-object workload with admin sessions at `admin_priority`.
RunOutcome RunWith(int admin_priority, uint64_t seed) {
  auto db = std::make_unique<storage::Database>();
  PRESERIAL_CHECK(db->Open().ok());
  Result<storage::Schema> schema = storage::Schema::Create(
      {
          storage::ColumnDef{"id", storage::ValueType::kInt64, false},
          storage::ColumnDef{"qty", storage::ValueType::kInt64, false},
      },
      0);
  PRESERIAL_CHECK(db->CreateTable("t", std::move(schema).value()).ok());
  PRESERIAL_CHECK(
      db->InsertRow("t", Row({Value::Int(0), Value::Int(1000000)})).ok());

  sim::Simulator simulator;
  gtm::Gtm gtm(db.get(), simulator.clock());
  PRESERIAL_CHECK(gtm.RegisterObject("X", "t", Value::Int(0), {1}).ok());

  // Custom driver: we need Begin(priority), which the stock GtmRunner's
  // sessions do not expose, so the admin transactions are driven by hand
  // while bookings flow through the runner.
  workload::GtmRunner runner(&gtm, &simulator);
  Rng rng(seed);
  constexpr int kUpdates = 150;
  constexpr double kWork = 1.0;
  for (int i = 0; i < kUpdates; ++i) {
    mobile::TxnPlan plan;
    plan.object = "X";
    plan.op = semantics::Operation::Assign(
        Value::Int(rng.NextInt(1, 1000000)));
    plan.work_time = kWork;
    plan.tag = 0;
    runner.AddSession(std::move(plan), i * 0.5);
  }

  RunOutcome outcome;
  // Five admin assignments arrive mid-storm. They drive the Gtm directly,
  // so every interaction ends with runner.DispatchEvents() to hand grants
  // to the waiting update sessions.
  for (int i = 0; i < 5; ++i) {
    const double arrival = 20.0 + i * 25.0;
    simulator.At(arrival, [&gtm, &simulator, &runner, &outcome,
                           admin_priority, arrival] {
      const TxnId admin = gtm.Begin(admin_priority);
      const Status s = gtm.Invoke(
          admin, "X", 0, semantics::Operation::Assign(Value::Int(500000)));
      auto commit = [&gtm, &runner, &outcome, admin, arrival, &simulator] {
        (void)gtm.RequestCommit(admin);
        outcome.admin_latency.Add(simulator.Now() - arrival);
        runner.DispatchEvents();
      };
      if (s.ok()) {
        simulator.After(0.5, commit);
      } else if (s.code() == StatusCode::kWaiting) {
        // Poll for our admission (the runner drains shared events, so the
        // admin watches its own state instead).
        auto poll = std::make_shared<std::function<void()>>();
        *poll = [&gtm, &simulator, admin, commit, poll] {
          Result<gtm::TxnState> st = gtm.StateOf(admin);
          if (st.ok() && st.value() == gtm::TxnState::kActive) {
            simulator.After(0.5, commit);
          } else if (st.ok() && st.value() == gtm::TxnState::kWaiting) {
            simulator.After(0.5, *poll);
          }
        };
        simulator.After(0.5, *poll);
      } else {
        (void)gtm.RequestAbort(admin);
        runner.DispatchEvents();
      }
      runner.DispatchEvents();
    });
  }

  const workload::RunStats& stats = runner.Run();
  outcome.booking_latency = stats.latency_committed;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace preserial;
  const bench::ObsFlags obs = bench::ParseObsFlags(argc, argv);
  bench::Banner(
      "Ablation: admin priority on a hot object (5 urgent assignments vs "
      "150 serialized updates)");
  bench::TablePrinter table({"admin prio", "admin mean", "admin max",
                             "update mean", "update p99"},
                            14);
  table.PrintHeader();
  for (int priority : {0, 10}) {
    const RunOutcome r = RunWith(priority, 42);
    table.PrintRow({bench::Num(priority, 0),
                    bench::Num(r.admin_latency.mean(), 2),
                    bench::Num(r.admin_latency.Percentile(1.0), 2),
                    bench::Num(r.booking_latency.mean(), 2),
                    bench::Num(r.booking_latency.p99(), 2)});
  }
  std::puts(
      "\nshape check: priority moves the admins to the head of every wait "
      "queue, cutting their latency at modest cost to the booking tail.");

  if (obs.enabled()) {
    // This bench drives the Gtm by hand, so the traced run reuses the
    // stock experiment on a comparable hot-object contention profile.
    workload::GtmExperimentSpec spec;
    spec.num_txns = 400;
    spec.num_objects = 1;
    spec.alpha = 0.3;  // Mostly serialized assignments — deep wait queues.
    spec.beta = 0.0;
    spec.interarrival = 0.5;
    spec.work_time = 2.0;
    spec.seed = 42;
    spec.trace_capacity = obs.trace_capacity;
    const workload::ExperimentResult traced =
        workload::RunGtmExperiment(spec);
    bench::WriteObsOutputs(obs, traced.trace_events, traced.snapshot);
  }
  return 0;
}
