// Regenerates paper Fig. 2: abort percentage of disconnected/sleeping
// transactions as a function of the conflict percentage and the
// disconnection percentage, for increasing incompatibility — analytic
// model P(abort) = P(d) P(c) P(i), validated against simulation of the
// real GTM sleep/awake machinery.

#include <cstdio>

#include "bench_util.h"
#include "model/analytic.h"
#include "workload/synthetic.h"

int main() {
  using namespace preserial;

  for (int ip : {25, 50, 75, 100}) {
    bench::Banner(StrFormat(
        "Fig. 2 (analytic): abort %% of all txns, incompatibility = %d%%",
        ip));
    bench::TablePrinter table({"disc% \\ conf%", "10", "25", "50", "75",
                               "100"},
                              13);
    table.PrintHeader();
    for (int dp : {10, 25, 50, 75, 100}) {
      std::vector<std::string> row = {bench::Num(dp, 0)};
      for (int cp : {10, 25, 50, 75, 100}) {
        row.push_back(bench::Num(
            100.0 * model::SleeperAbortProbability(dp / 100.0, cp / 100.0,
                                                   ip / 100.0),
            2));
      }
      table.PrintRow(row);
    }
  }

  bench::Banner(
      "Fig. 2 (simulation): real GTM sleep/awake, n = 2000 per point");
  bench::TablePrinter sim_table({"disc%", "conf%", "incomp%", "sim abort%",
                                 "model abort%", "sim sleepers%",
                                 "model sleepers%"},
                                14);
  sim_table.PrintHeader();
  for (int dp : {25, 50, 100}) {
    for (int cp : {25, 50, 100}) {
      for (int ip : {50, 100}) {
        workload::SleeperSpec spec;
        spec.n = 2000;
        spec.p_disconnect = dp / 100.0;
        spec.p_conflict = cp / 100.0;
        spec.p_incompatible = ip / 100.0;
        spec.seed = static_cast<uint64_t>(dp * 10000 + cp * 100 + ip);
        const workload::SleeperResult r =
            workload::RunSleeperAbortExperiment(spec);
        sim_table.PrintRow(
            {bench::Num(dp, 0), bench::Num(cp, 0), bench::Num(ip, 0),
             bench::Num(r.abort_pct_all, 2), bench::Num(r.model_abort_pct, 2),
             bench::Num(r.abort_pct_disconnected, 2),
             bench::Num(100.0 * (cp / 100.0) * (ip / 100.0), 2)});
      }
    }
  }
  std::puts(
      "\nshape check: abort%% is multiplicative in disconnection, conflict "
      "and incompatibility rates; compatible traffic never kills sleepers.");
  return 0;
}
