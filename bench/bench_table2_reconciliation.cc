// Regenerates paper Table II: two transactions A and B concurrently add to
// the same object (X = 100; A: +1 then +3, B: +2), then commit in order
// A, B. Every row of the paper's table is reproduced from live GTM state.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "gtm/gtm.h"
#include "storage/database.h"

namespace {

using namespace preserial;
using gtm::Gtm;
using gtm::ObjectState;
using semantics::Operation;
using storage::Value;

std::string Cell(const Result<Value>& v) {
  return v.ok() ? v.value().ToString() : "-";
}

struct Snapshot {
  Gtm* gtm;
  TxnId a, b;

  Result<Value> Permanent() const { return gtm->PermanentValue("X", 0); }
  Result<Value> Read(TxnId t) const {
    Result<const ObjectState*> obj = gtm->GetObject("X");
    if (!obj.ok()) return obj.status();
    auto it = obj.value()->read.find(t);
    if (it == obj.value()->read.end() || it->second.count(0) == 0) {
      return Status::NotFound("no X_read");
    }
    return it->second.at(0);
  }
  Result<Value> Temp(TxnId t) const {
    const gtm::ManagedTxn* mt = gtm->GetTxn(t);
    if (mt == nullptr) return Status::NotFound("no txn");
    return mt->GetTemp(gtm::Cell{"X", 0});
  }
  Result<Value> NewValue(TxnId t) const {
    Result<const ObjectState*> obj = gtm->GetObject("X");
    if (!obj.ok()) return obj.status();
    auto it = obj.value()->new_values.find(t);
    if (it == obj.value()->new_values.end() || it->second.count(0) == 0) {
      return Status::NotFound("no X_new");
    }
    return it->second.at(0);
  }
};

}  // namespace

int main() {
  auto db = std::make_unique<storage::Database>();
  if (!db->Open().ok()) return 1;
  Result<storage::Schema> schema = storage::Schema::Create(
      {
          storage::ColumnDef{"id", storage::ValueType::kInt64, false},
          storage::ColumnDef{"x", storage::ValueType::kInt64, false},
      },
      0);
  if (!db->CreateTable("t", std::move(schema).value()).ok()) return 1;
  if (!db->InsertRow("t", storage::Row({Value::Int(0), Value::Int(100)}))
           .ok()) {
    return 1;
  }
  ManualClock clock;
  Gtm gtm(db.get(), &clock);
  if (!gtm.RegisterObject("X", "t", Value::Int(0), {1}).ok()) return 1;

  bench::Banner("Table II: reconciliation of two concurrent additions");
  bench::TablePrinter table(
      {"A code", "B code", "X_perm", "X_read^A", "A_temp", "X_new^A",
       "X_read^B", "B_temp", "X_new^B"},
      11);
  table.PrintHeader();

  Snapshot snap{&gtm, 0, 0};
  auto row = [&](const char* a_code, const char* b_code) {
    table.PrintRow({a_code, b_code, Cell(snap.Permanent()),
                    Cell(snap.Read(snap.a)), Cell(snap.Temp(snap.a)),
                    Cell(snap.NewValue(snap.a)), Cell(snap.Read(snap.b)),
                    Cell(snap.Temp(snap.b)), Cell(snap.NewValue(snap.b))});
  };

  const TxnId a = gtm.Begin();
  snap.a = a;
  snap.b = 0;
  row("begin", "-");

  // A reads X (grant + snapshot); B begins.
  if (!gtm.Invoke(a, "X", 0, Operation::Read()).ok()) return 1;
  const TxnId b = gtm.Begin();
  snap.b = b;
  row("read X", "begin");

  // A plans X = X + 1 (still local); B reads X.
  if (!gtm.Invoke(b, "X", 0, Operation::Read()).ok()) return 1;
  row("X = X+1", "read X");

  // A writes (+1 applied to its copy); B plans +2.
  if (!gtm.Invoke(a, "X", 0, Operation::Add(Value::Int(1))).ok()) return 1;
  row("write X", "X = X+2");

  // A plans +3; B writes (+2 applied).
  if (!gtm.Invoke(b, "X", 0, Operation::Add(Value::Int(2))).ok()) return 1;
  row("X = X+3", "write X");

  // A writes (+3 applied).
  if (!gtm.Invoke(a, "X", 0, Operation::Add(Value::Int(3))).ok()) return 1;
  row("write X", "-");

  // A requests commit: X_new^A computed via eq. (1), SST installs it.
  if (!gtm.RequestCommit(a).ok()) return 1;
  row("req commit", "-");
  row("commit", "req commit");

  // B commits: eq. (1) folds A's committed work in.
  if (!gtm.RequestCommit(b).ok()) return 1;
  row("-", "commit");

  const Value final_value = gtm.PermanentValue("X", 0).value();
  std::printf("\nfinal X_permanent = %s (paper: 106)\n",
              final_value.ToString().c_str());
  return final_value == Value::Int(106) ? 0 : 1;
}
